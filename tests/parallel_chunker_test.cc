// Tests for the speculative intra-file parallel TOKENIZE
// (format/parallel_chunker): the caller-participating ParallelFor, the
// quote-aware record scanner, parallel-vs-sequential byte equivalence over
// randomized inputs (with range boundaries forced into adversarial spots),
// seeded misspeculation + repair, and the quoted dialect end to end through
// the chunker, tokenizer, and parser against generated ground truth.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/csv_generator.h"
#include "format/parallel_chunker.h"
#include "format/parser.h"
#include "format/schema.h"
#include "format/text_chunk.h"
#include "format/tokenizer.h"
#include "obs/telemetry.h"
#include "pipeline/thread_pool.h"
#include "scanraw/raw_reader.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

void ExpectMapsEqual(const PositionalMap& got, const PositionalMap& want,
                     const std::string& context) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << context;
  ASSERT_EQ(got.fields_per_row(), want.fields_per_row()) << context;
  for (size_t r = 0; r < want.num_rows(); ++r) {
    for (size_t f = 0; f < want.fields_per_row(); ++f) {
      ASSERT_EQ(got.FieldStart(r, f), want.FieldStart(r, f))
          << context << " row " << r << " field " << f;
      ASSERT_EQ(got.FieldEnd(r, f), want.FieldEnd(r, f))
          << context << " row " << r << " field " << f;
    }
  }
}

TEST(ParallelForTest, RunsEveryIndexOnceWithAndWithoutPool) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{3}}) {
    ThreadPool pool(workers);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{100}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h = 0;
      ParallelFor(&pool, n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " n=" << n;
      }
    }
  }
  // Null pool degrades to an inline loop.
  std::atomic<size_t> sum{0};
  ParallelFor(nullptr, 10, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(RecordScanTest, QuotedNewlinesDoNotTerminateRecords) {
  const RecordDialect quoted{true, '"'};
  struct Case {
    const char* data;
    std::vector<uint32_t> want;
    bool end_inside;
  };
  const Case cases[] = {
      {"a,b\nc,d\n", {3, 7}, false},
      {"a,\"x\ny\",b\nc\n", {9, 11}, false},            // quoted newline
      {"\"a\"\"b\",c\n", {8}, false},                   // doubled quote
      {"\"open\n", {}, true},                           // unterminated quote
      {"\"\"\n\"\"\"\n\"\n", {2, 8}, false},            // pathological quotes
      {"", {}, false},
  };
  for (const Case& tc : cases) {
    std::vector<uint32_t> got;
    const bool inside = FindRecordNewlines(
        tc.data, 0, std::string_view(tc.data).size(), quoted,
        /*start_inside=*/false, &got);
    EXPECT_EQ(got, tc.want) << tc.data;
    EXPECT_EQ(inside, tc.end_inside) << tc.data;
  }

  // start_inside flips the interpretation: the leading newline is quoted.
  std::vector<uint32_t> got;
  const bool inside = FindRecordNewlines("x\ny\"\nz\n", 0, 7, quoted,
                                         /*start_inside=*/true, &got);
  EXPECT_EQ(got, (std::vector<uint32_t>{4, 6}));
  EXPECT_FALSE(inside);
}

std::string RandomQuotedText(Random* rng, size_t approx_bytes) {
  std::string data;
  while (data.size() < approx_bytes) {
    const size_t cols = 1 + rng->Uniform(4);
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) data.push_back(',');
      if (rng->OneIn(2)) {
        data.push_back('"');
        const size_t len = rng->Uniform(9);
        for (size_t i = 0; i < len; ++i) {
          switch (rng->Uniform(6)) {
            case 0: data += "\"\""; break;  // escaped quote
            case 1: data.push_back('\n'); break;
            case 2: data.push_back(','); break;
            default: data.push_back(static_cast<char>('a' + rng->Uniform(26)));
          }
        }
        data.push_back('"');
      } else {
        const size_t len = rng->Uniform(6);
        for (size_t i = 0; i < len; ++i) {
          data.push_back(static_cast<char>('a' + rng->Uniform(26)));
        }
      }
    }
    data.push_back('\n');
  }
  return data;
}

TEST(RecordScanTest, ParallelMatchesSequentialOnRandomizedInputs) {
  Random rng(20260808);
  ThreadPool pool(3);
  const RecordDialect quoted{true, '"'};
  for (int iter = 0; iter < 60; ++iter) {
    const std::string data = RandomQuotedText(&rng, 64 + rng.Uniform(2000));
    const std::string context = "iter " + std::to_string(iter);

    std::vector<uint32_t> want;
    const bool want_inside = FindRecordNewlines(
        data.data(), 0, data.size(), quoted, /*start_inside=*/false, &want);

    RecordScanOptions sopts;
    sopts.dialect = quoted;
    sopts.pool = &pool;
    sopts.num_ranges = 1 + rng.Uniform(8);
    sopts.min_range_bytes = 1;  // force boundaries into tiny inputs
    SpeculationStats stats;
    std::vector<uint32_t> got;
    const bool got_inside = ParallelFindRecordNewlines(
        data.data(), 0, data.size(), /*start_inside=*/false, sopts, &stats,
        &got);
    EXPECT_EQ(got, want) << context;
    EXPECT_EQ(got_inside, want_inside) << context;
    EXPECT_GE(stats.ranges, 1u) << context;
  }
}

TEST(RecordScanTest, SeededMisspeculationIsCountedAndRepaired) {
  // A quoted field that spans the midpoint of the buffer: with two ranges,
  // range 1 starts inside the quote but speculates outside, sees the quoted
  // newline as a record boundary, and must be repaired after the parity
  // fold exposes the misspeculation.
  std::string data = "a,b\nc,\"";
  data.append(40, 'x');
  data += "\nstill quoted";
  data.append(40, 'y');
  data += "\",tail\nlast,row\n";

  const RecordDialect quoted{true, '"'};
  std::vector<uint32_t> want;
  FindRecordNewlines(data.data(), 0, data.size(), quoted,
                     /*start_inside=*/false, &want);
  ASSERT_EQ(want.size(), 3u);  // the quoted newline terminates nothing

  ThreadPool pool(2);
  RecordScanOptions sopts;
  sopts.dialect = quoted;
  sopts.pool = &pool;
  sopts.num_ranges = 2;
  sopts.min_range_bytes = 1;
  SpeculationStats stats;
  std::vector<uint32_t> got;
  ParallelFindRecordNewlines(data.data(), 0, data.size(),
                             /*start_inside=*/false, sopts, &stats, &got);
  EXPECT_EQ(got, want);
  EXPECT_EQ(stats.ranges, 2u);
  EXPECT_GE(stats.misspeculations, 1u);
  EXPECT_GT(stats.repair_bytes, 0u);
}

TEST(RecordScanTest, UnquotedDialectNeverMisspeculates) {
  Random rng(7);
  ThreadPool pool(2);
  RecordScanOptions sopts;
  sopts.pool = &pool;
  sopts.min_range_bytes = 1;
  for (int iter = 0; iter < 10; ++iter) {
    const std::string data = RandomQuotedText(&rng, 500);
    std::vector<uint32_t> want;
    FindLineStarts(data, &want);  // plain newline semantics

    SpeculationStats stats;
    std::vector<uint32_t> newlines;
    ParallelFindRecordNewlines(data.data(), 0, data.size(),
                               /*start_inside=*/false, sopts, &stats,
                               &newlines);
    EXPECT_EQ(stats.misspeculations, 0u);
    std::vector<uint32_t> starts;
    starts.push_back(0);
    for (uint32_t nl : newlines) {
      if (nl + 1 < data.size()) starts.push_back(nl + 1);
    }
    EXPECT_EQ(starts, want) << "iter " << iter;
  }
}

TokenizeOptions TokOpts(const Schema& schema, bool quoted) {
  TokenizeOptions opts;
  opts.delimiter = schema.delimiter();
  opts.schema_fields = schema.num_columns();
  opts.quoted = quoted;
  return opts;
}

std::string RandomUnquotedCsv(Random* rng, size_t cols, size_t rows) {
  std::string data;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) data.push_back(',');
      const size_t len = rng->Uniform(10);
      for (size_t i = 0; i < len; ++i) {
        data.push_back(static_cast<char>('a' + rng->Uniform(26)));
      }
    }
    data.push_back('\n');
  }
  return data;
}

TEST(ParallelTokenizeTest, MatchesSequentialOnRandomizedInputs) {
  Random rng(515);
  ThreadPool pool(3);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t cols = 1 + rng.Uniform(8);
    const size_t rows = rng.Uniform(200);
    const bool quoted = rng.OneIn(2);
    std::string data;
    std::vector<uint32_t> starts;
    const Schema schema = Schema::AllUint32(cols, ',');
    if (quoted) {
      // Quoted text needs quote-aware record starts.
      data = RandomQuotedText(&rng, 32 + rng.Uniform(1500));
      std::vector<uint32_t> newlines;
      FindRecordNewlines(data.data(), 0, data.size(), RecordDialect{true, '"'},
                         false, &newlines);
      starts.push_back(0);
      for (uint32_t nl : newlines) {
        if (nl + 1 < data.size()) starts.push_back(nl + 1);
      }
    } else {
      data = RandomUnquotedCsv(&rng, cols, rows);
      if (data.empty()) continue;
      FindLineStarts(data, &starts);
    }
    TextChunk chunk = MakeTextChunk(std::move(data), std::move(starts), iter);

    TokenizeOptions topts;
    topts.delimiter = ',';
    topts.quoted = quoted;
    // Quoted random text has ragged widths; oversized schema plus max_fields
    // keeps the tokenizer from rejecting rows while still exercising spans.
    topts.schema_fields = quoted ? 64 : cols;
    topts.max_fields = quoted ? 1 : 0;

    auto want = TokenizeChunk(chunk, topts);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    ParallelTokenizeOptions ptopts;
    ptopts.pool = &pool;
    ptopts.num_ranges = 1 + rng.Uniform(8);
    ptopts.min_range_bytes = 1;
    SpeculationStats stats;
    auto got = ParallelTokenizeChunk(chunk, topts, ptopts, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectMapsEqual(*got, *want, "iter " + std::to_string(iter));
    EXPECT_GE(stats.ranges, 1u);
  }
}

TEST(ParallelTokenizeTest, FirstErrorMatchesSequential) {
  // Malformed rows in several ranges: the parallel tokenizer must surface
  // the same first error the sequential pass reports.
  std::string data;
  for (int r = 0; r < 50; ++r) {
    data += (r == 17 || r == 41) ? "a,b\n" : "a,b,c\n";
  }
  TextChunk chunk = MakeTextChunk(std::move(data), 9);
  const Schema schema = Schema::AllUint32(3, ',');
  const TokenizeOptions topts = TokOpts(schema, false);

  auto want = TokenizeChunk(chunk, topts);
  ASSERT_FALSE(want.ok());

  ThreadPool pool(3);
  ParallelTokenizeOptions ptopts;
  ptopts.pool = &pool;
  ptopts.num_ranges = 4;
  ptopts.min_range_bytes = 1;
  SpeculationStats stats;
  auto got = ParallelTokenizeChunk(chunk, topts, ptopts, &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().ToString(), want.status().ToString());
}

TEST(ParallelTokenizeTest, RangeSpanCallbackFiresPerRange) {
  ThreadPool pool(2);
  Random rng(3);
  TextChunk chunk = MakeTextChunk(RandomUnquotedCsv(&rng, 4, 64));
  const TokenizeOptions topts = TokOpts(Schema::AllUint32(4, ','), false);
  ParallelTokenizeOptions ptopts;
  ptopts.pool = &pool;
  ptopts.num_ranges = 4;
  ptopts.min_range_bytes = 1;
  std::atomic<size_t> spans{0};
  ptopts.range_span = [&](size_t, int64_t, int64_t dur) {
    EXPECT_GE(dur, 0);
    spans.fetch_add(1);
  };
  SpeculationStats stats;
  auto got = ParallelTokenizeChunk(chunk, topts, ptopts, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(spans.load(), stats.ranges);
  EXPECT_GE(spans.load(), 2u);
}

TEST(QuotedDialectTest, TokenizeAndParseRoundTrip) {
  // RFC-4180 features in one chunk: embedded delimiter, doubled-quote
  // escape, quoted newline, and a plain unquoted field in the same row.
  const std::string data =
      "1,\"a,b\",plain\n"
      "2,\"x\"\"y\",\"line\nbreak\"\n";
  const RecordDialect quoted{true, '"'};
  std::vector<uint32_t> newlines;
  FindRecordNewlines(data.data(), 0, data.size(), quoted, false, &newlines);
  std::vector<uint32_t> starts{0};
  for (uint32_t nl : newlines) {
    if (nl + 1 < data.size()) starts.push_back(nl + 1);
  }
  TextChunk chunk = MakeTextChunk(data, std::move(starts));
  ASSERT_EQ(chunk.num_rows(), 2u);

  std::vector<ColumnDef> defs = {{"id", FieldType::kUint32},
                                 {"s1", FieldType::kString},
                                 {"s2", FieldType::kString}};
  const Schema schema(defs);
  auto map = TokenizeChunk(chunk, TokOpts(schema, /*quoted=*/true));
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_TRUE(map->explicit_ends());

  ParseOptions popts;
  popts.unescape_quotes = true;
  auto parsed = ParseChunk(chunk, *map, schema, popts);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->column(0).AsUint32()[0], 1u);
  EXPECT_EQ(parsed->column(0).AsUint32()[1], 2u);
  EXPECT_EQ(parsed->column(1).StringAt(0), "a,b");
  EXPECT_EQ(parsed->column(2).StringAt(0), "plain");
  EXPECT_EQ(parsed->column(1).StringAt(1), "x\"y");
  EXPECT_EQ(parsed->column(2).StringAt(1), "line\nbreak");
}

TEST(QuotedDialectTest, GeneratedFileRoundTripsThroughChunker) {
  const std::string path = testing::TempDir() + "/quoted_roundtrip.csv";
  CsvSpec spec;
  spec.num_rows = 700;
  spec.num_columns = 5;
  spec.quoted_columns = 2;
  spec.quoted_newline_one_in = 6;
  spec.seed = 99;
  auto info = GenerateCsvFile(path, spec);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_GT(info->quoted_newlines, 0u);
  const Schema schema = CsvSchema(spec);

  ThreadPool pool(2);
  const RecordDialect dialect{true, '"'};
  auto chunker = SequentialChunker::Open(path, /*chunk_rows=*/64, nullptr,
                                         nullptr, nullptr, dialect, &pool);
  ASSERT_TRUE(chunker.ok()) << chunker.status().ToString();

  TokenizeOptions topts = TokOpts(schema, /*quoted=*/true);
  ParseOptions popts;
  popts.unescape_quotes = true;
  uint64_t rows = 0;
  std::vector<uint64_t> sums(spec.num_columns, 0);
  while (true) {
    auto chunk = (*chunker)->Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk->has_value()) break;

    ParallelTokenizeOptions ptopts;
    ptopts.pool = &pool;
    ptopts.min_range_bytes = 1;
    SpeculationStats stats;
    auto map = ParallelTokenizeChunk(**chunk, topts, ptopts, &stats);
    ASSERT_TRUE(map.ok()) << map.status().ToString();
    auto parsed = ParseChunk(**chunk, *map, schema, popts);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    rows += parsed->num_rows();
    for (size_t c = 0; c + spec.quoted_columns < spec.num_columns; ++c) {
      for (uint32_t v : parsed->column(c).AsUint32()) sums[c] += v;
    }
  }
  // Quoted newlines must not split records: row count and the numeric
  // ground-truth sums survive the round trip exactly.
  EXPECT_EQ(rows, spec.num_rows);
  for (size_t c = 0; c + spec.quoted_columns < spec.num_columns; ++c) {
    EXPECT_EQ(sums[c], info->column_sums[c]) << "column " << c;
  }
  EXPECT_GT((*chunker)->speculation().ranges, 0u);
}

// Full-stack: chunks big enough to split (>= 128 KB) must engage the
// parallel tier inside ScanRaw's TOKENIZE stage — visible as
// scanraw.tokenize.ranges exceeding the chunk count — while answers stay
// exact, and the frozen sequential tier (parallel_tokenize = false) must
// return the same sums without fanning out ranges.
TEST(ScanRawParallelTest, BigChunksEngageParallelTokenizeExactly) {
  const std::string path = testing::TempDir() + "/parallel_e2e.csv";
  CsvSpec spec;
  spec.num_rows = 30000;  // ~2.6 MB: two ~1.3 MB chunks
  spec.num_columns = 8;
  spec.seed = 17;
  auto info = GenerateCsvFile(path, spec);
  ASSERT_TRUE(info.ok());

  QuerySpec q;
  for (size_t c = 0; c < spec.num_columns; ++c) q.sum_columns.push_back(c);

  for (const bool parallel : {true, false}) {
    ScanRawManager::Config config;
    config.db_path = path + (parallel ? ".par.db" : ".seq.db");
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ScanRawOptions options;
    options.policy = LoadPolicy::kExternalTables;
    options.num_workers = 2;
    options.chunk_rows = 16384;
    options.parallel_tokenize = parallel;
    ASSERT_TRUE(
        (*manager)->RegisterRawFile("t", path, CsvSchema(spec), options).ok());

    auto result = (*manager)->Query("t", q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info->total_sum);
    EXPECT_EQ(result->rows_scanned, spec.num_rows);

    const uint64_t ranges = (*manager)
                                ->telemetry()
                                ->metrics()
                                .GetCounter("scanraw.tokenize.ranges")
                                ->value();
    if (parallel) {
      EXPECT_GT(ranges, 2u);  // more ranges than chunks = real fan-out
    } else {
      EXPECT_EQ(ranges, 0u);
    }
  }
}

// Full-stack quoted dialect: quoted newlines in the raw file must not split
// records anywhere in the READ/TOKENIZE/PARSE pipeline, and the numeric
// ground truth must survive with the parallel tier on.
TEST(ScanRawParallelTest, QuotedFieldsEndToEnd) {
  const std::string path = testing::TempDir() + "/quoted_e2e.csv";
  CsvSpec spec;
  spec.num_rows = 5000;
  spec.num_columns = 6;
  spec.quoted_columns = 2;
  spec.quoted_newline_one_in = 7;
  spec.seed = 23;
  auto info = GenerateCsvFile(path, spec);
  ASSERT_TRUE(info.ok());
  ASSERT_GT(info->quoted_newlines, 0u);

  ScanRawManager::Config config;
  config.db_path = path + ".db";
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.policy = LoadPolicy::kExternalTables;
  options.num_workers = 2;
  options.chunk_rows = 512;
  options.quoted_fields = true;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("t", path, CsvSchema(spec), options).ok());

  QuerySpec q;
  const size_t numeric = spec.num_columns - spec.quoted_columns;
  for (size_t c = 0; c < numeric; ++c) q.sum_columns.push_back(c);
  auto result = (*manager)->Query("t", q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_scanned, spec.num_rows);
  uint64_t want_sum = 0;
  for (size_t c = 0; c < numeric; ++c) want_sum += info->column_sums[c];
  EXPECT_EQ(result->total_sum, want_sum);
}

}  // namespace
}  // namespace scanraw
