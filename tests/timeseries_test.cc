#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace scanraw {
namespace obs {
namespace {

constexpr int64_t kSecond = 1'000'000'000;

TEST(TimeSeriesRingTest, KeepsMostRecentCapacityPoints) {
  TimeSeriesRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Append(i * kSecond, static_cast<double>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_appended(), 10u);
  auto points = ring.Snapshot();
  ASSERT_EQ(points.size(), 4u);
  // Oldest-to-newest across the wraparound boundary.
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].value, static_cast<double>(6 + i));
    EXPECT_EQ(points[i].ts_nanos, static_cast<int64_t>(6 + i) * kSecond);
  }
  TimeSeriesRing::Point latest;
  ASSERT_TRUE(ring.Latest(&latest));
  EXPECT_EQ(latest.value, 9.0);
}

TEST(TimeSeriesRingTest, LatestFalseWhenEmpty) {
  TimeSeriesRing ring(4);
  TimeSeriesRing::Point p;
  EXPECT_FALSE(ring.Latest(&p));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TimeSeriesRingTest, DeltaOverNeedsTwoPointsInWindow) {
  TimeSeriesRing ring(8);
  double delta = 0;
  int64_t elapsed = 0;
  EXPECT_FALSE(ring.DeltaOver(10 * kSecond, &delta, &elapsed));
  ring.Append(0, 100.0);
  EXPECT_FALSE(ring.DeltaOver(10 * kSecond, &delta, &elapsed));
  ring.Append(2 * kSecond, 300.0);
  ASSERT_TRUE(ring.DeltaOver(10 * kSecond, &delta, &elapsed));
  EXPECT_EQ(delta, 200.0);
  EXPECT_EQ(elapsed, 2 * kSecond);
}

TEST(TimeSeriesRingTest, DeltaOverRespectsWindowBound) {
  TimeSeriesRing ring(16);
  ring.Append(0, 0.0);
  ring.Append(5 * kSecond, 50.0);
  ring.Append(9 * kSecond, 90.0);
  ring.Append(10 * kSecond, 100.0);
  double delta = 0;
  int64_t elapsed = 0;
  // 2 s window from the newest point (t=10): only t=9 and t=10 qualify.
  ASSERT_TRUE(ring.DeltaOver(2 * kSecond, &delta, &elapsed));
  EXPECT_EQ(delta, 10.0);
  EXPECT_EQ(elapsed, kSecond);
  // A huge window reaches all the way back.
  ASSERT_TRUE(ring.DeltaOver(100 * kSecond, &delta, &elapsed));
  EXPECT_EQ(delta, 100.0);
  EXPECT_EQ(elapsed, 10 * kSecond);
}

TEST(TimeSeriesRingTest, ZeroElapsedNeverDividesByZero) {
  TimeSeriesRing ring(4);
  ring.Append(5 * kSecond, 1.0);
  ring.Append(5 * kSecond, 9.0);  // identical timestamps
  double delta = 0;
  int64_t elapsed = 0;
  EXPECT_FALSE(ring.DeltaOver(10 * kSecond, &delta, &elapsed));
  EXPECT_EQ(ring.RatePerSecond(10 * kSecond), 0.0);
}

TEST(TimeSeriesRingTest, RatePerSecondMath) {
  TimeSeriesRing ring(8);
  ring.Append(0, 0.0);
  ring.Append(4 * kSecond, 1000.0);
  EXPECT_DOUBLE_EQ(ring.RatePerSecond(10 * kSecond), 250.0);
}

TEST(TimeSeriesTest, TrackCounterSamplesAndRates) {
  MetricsRegistry registry;
  Counter* rows = registry.GetCounter("rows");
  TimeSeries ts;
  ts.TrackCounter(&registry, "rows");
  EXPECT_EQ(ts.num_series(), 1u);
  // Idempotent per series name.
  ts.TrackCounter(&registry, "rows");
  EXPECT_EQ(ts.num_series(), 1u);

  ts.SampleNow(0);
  rows->Add(500);
  ts.SampleNow(kSecond);
  rows->Add(500);
  ts.SampleNow(2 * kSecond);

  const TimeSeriesRing* ring = ts.Find("rows");
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->size(), 3u);
  EXPECT_DOUBLE_EQ(ring->RatePerSecond(10 * kSecond), 500.0);

  auto rates = ts.Rates(10 * kSecond);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].name, "rows");
  EXPECT_EQ(rates[0].kind, TimeSeries::Kind::kCounter);
  EXPECT_TRUE(rates[0].rate_defined);
  EXPECT_DOUBLE_EQ(rates[0].rate_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(rates[0].latest, 1000.0);
}

TEST(TimeSeriesTest, GaugeAndQuantileAreLevels) {
  MetricsRegistry registry;
  registry.GetGauge("depth")->Set(7);
  Histogram* lat = registry.GetHistogram("lat");
  for (int i = 0; i < 100; ++i) lat->Record(1000);
  TimeSeries ts;
  ts.TrackGauge(&registry, "depth");
  ts.TrackHistogramQuantile(&registry, "lat", 0.95, "lat.p95");
  ts.SampleNow(0);
  ts.SampleNow(kSecond);
  auto rates = ts.Rates(10 * kSecond);
  ASSERT_EQ(rates.size(), 2u);
  for (const auto& row : rates) {
    EXPECT_FALSE(row.rate_defined) << row.name;
    if (row.name == "depth") {
      EXPECT_EQ(row.kind, TimeSeries::Kind::kGauge);
      EXPECT_DOUBLE_EQ(row.latest, 7.0);
    } else {
      EXPECT_EQ(row.name, "lat.p95");
      EXPECT_EQ(row.kind, TimeSeries::Kind::kHistogramQuantile);
      EXPECT_GT(row.latest, 0.0);
    }
  }
}

TEST(TimeSeriesTest, MaybeSampleHonorsInterval) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.interval_nanos = kSecond;
  TimeSeries ts(options);
  ts.TrackCounter(&registry, "c");
  EXPECT_TRUE(ts.MaybeSample(kSecond));
  EXPECT_FALSE(ts.MaybeSample(kSecond + kSecond / 2));  // half interval
  EXPECT_TRUE(ts.MaybeSample(2 * kSecond));
  EXPECT_EQ(ts.Find("c")->size(), 2u);
}

TEST(TimeSeriesTest, MaybeSampleDisabledByZeroInterval) {
  MetricsRegistry registry;
  TimeSeries ts;
  ts.TrackCounter(&registry, "c");
  ts.set_interval_nanos(0);
  EXPECT_FALSE(ts.MaybeSample(kSecond));
  EXPECT_FALSE(ts.MaybeSample(100 * kSecond));
  EXPECT_EQ(ts.Find("c")->size(), 0u);
  // Negative intervals clamp to disabled rather than going backwards.
  ts.set_interval_nanos(-5);
  EXPECT_EQ(ts.interval_nanos(), 0);
}

TEST(TimeSeriesTest, ConcurrentMaybeSampleOneWinnerPerSlot) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.interval_nanos = kSecond;
  TimeSeries ts(options);
  ts.TrackCounter(&registry, "c");
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (ts.MaybeSample(5 * kSecond)) wins.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_EQ(ts.Find("c")->size(), 1u);
}

TEST(TimeSeriesTest, TrackPipelineDefaultsRegistersStandardSet) {
  MetricsRegistry registry;
  TimeSeries ts;
  ts.TrackPipelineDefaults(&registry);
  EXPECT_NE(ts.Find("scanraw.rows_delivered"), nullptr);
  EXPECT_NE(ts.Find("scanraw.bytes_converted"), nullptr);
  EXPECT_NE(ts.Find("scanraw.cache.hits"), nullptr);
  EXPECT_NE(ts.Find("scanraw.cache.misses"), nullptr);
  EXPECT_NE(ts.Find("scanraw.chunks_written"), nullptr);
  EXPECT_NE(ts.Find("scanraw.stage.read_nanos.p95"), nullptr);
  EXPECT_EQ(ts.Find("not.tracked"), nullptr);
  // Re-registration (a second operator binding the same sink) is a no-op.
  size_t n = ts.num_series();
  ts.TrackPipelineDefaults(&registry);
  EXPECT_EQ(ts.num_series(), n);
}

TEST(TimeSeriesTest, CacheHitRateOverWindow) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("scanraw.cache.hits");
  Counter* misses = registry.GetCounter("scanraw.cache.misses");
  TimeSeries ts;
  double rate = -1.0;
  // Missing series: undefined.
  EXPECT_FALSE(ts.CacheHitRate(10 * kSecond, &rate));
  ts.TrackPipelineDefaults(&registry);
  ts.SampleNow(0);
  // No lookups in the window: undefined, not 0/0.
  ts.SampleNow(kSecond);
  EXPECT_FALSE(ts.CacheHitRate(10 * kSecond, &rate));
  hits->Add(30);
  misses->Add(10);
  ts.SampleNow(2 * kSecond);
  ASSERT_TRUE(ts.CacheHitRate(10 * kSecond, &rate));
  EXPECT_DOUBLE_EQ(rate, 0.75);
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
