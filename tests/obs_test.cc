// Tests for the obs/ building blocks in isolation: counters, gauges,
// log-bucketed histograms (quantiles, reset, JSON), the chunk-lifecycle
// tracer (ring wrap, Chrome export), the resource log, and the sampler
// thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/resource_sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace scanraw {
namespace obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, DeltaUpdatesCompose) {
  Gauge g;
  g.Add(5);
  g.Add(-2);
  EXPECT_EQ(g.value(), 3);
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (uint64_t v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Quantile(0.5);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucket interpolation is within a 2x bucket of the true rank.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(p99, 1000.0);
  // Quantiles never leave the observed range.
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, SingleValueQuantiles) {
  Histogram h;
  h.Record(777);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 777.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 777.0);
}

TEST(HistogramTest, ZeroValueIsCounted) {
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, Reset) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ExtremeValuesSurviveBucketing) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
  // Quantiles stay within the observed range even at the bucket extremes,
  // and remain monotone across the probe points.
  double prev = 0.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, 0.0) << "q=" << q;
    EXPECT_LE(v, static_cast<double>(std::numeric_limits<uint64_t>::max()))
        << "q=" << q;
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, QuantilesMonotoneOnSkewedData) {
  Histogram h;
  // Heavily skewed: many tiny values, one huge outlier.
  for (int i = 0; i < 1000; ++i) h.Record(1);
  h.Record(std::numeric_limits<uint64_t>::max());
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double v = h.Quantile(i / 100.0);
    EXPECT_GE(v, prev) << "q=" << i / 100.0;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

TEST(HistogramTest, ConcurrentRecording) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), static_cast<uint64_t>(kPerThread));
}

TEST(MetricsRegistryTest, StablePointersByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y.count"), a);
  // Same name in different metric families is distinct storage.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("x.count")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(7);
  registry.GetGauge("g")->Set(-3);
  registry.GetHistogram("h")->Record(99);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->count(), 0u);
}

TEST(MetricsRegistryTest, JsonExportContainsAllFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("events.total")->Add(3);
  registry.GetGauge("queue.depth")->Set(2);
  registry.GetHistogram("latency")->Record(1000);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"events.total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\":2"), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

TEST(ChunkTracerTest, RecordsSpansInOrder) {
  ChunkTracer tracer(16);
  tracer.RecordSpan(TraceStage::kRead, ChunkSource::kRaw, 0, 1000, 50);
  tracer.RecordSpan(TraceStage::kTokenize, ChunkSource::kRaw, 0, 1100, 70);
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage, TraceStage::kRead);
  EXPECT_EQ(events[1].stage, TraceStage::kTokenize);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ChunkTracerTest, RingWrapKeepsNewestAndCountsDropped) {
  ChunkTracer tracer(4);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.RecordSpan(TraceStage::kParse, ChunkSource::kRaw, i, 1000 + i, 1);
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().chunk_index, 6u);
  EXPECT_EQ(events.back().chunk_index, 9u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(ChunkTracerTest, ZeroCapacityDisablesRecording) {
  ChunkTracer tracer(0);
  EXPECT_FALSE(tracer.enabled());
  tracer.RecordSpan(TraceStage::kRead, ChunkSource::kRaw, 0, 0, 1);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(ChunkTracerTest, ChromeExportShape) {
  ChunkTracer tracer(16);
  tracer.RecordSpan(TraceStage::kRead, ChunkSource::kDb, 3, 5000, 2000);
  tracer.RecordInstant(TraceStage::kSpeculativeTrigger, 3);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("READ"), std::string::npos);
  EXPECT_NE(json.find("SPECULATIVE_TRIGGER"), std::string::npos);
  EXPECT_NE(json.find("\"db\""), std::string::npos);
  // Loadable as a top-level array (trailing newline allowed).
  EXPECT_NE(json.find_last_of(']'), std::string::npos);
}

TEST(ChunkTracerTest, LabelIsEscapedInChromeExport) {
  ChunkTracer tracer(16);
  tracer.RecordSpan(TraceStage::kRead, ChunkSource::kRaw, 0, 1000, 50);

  // Labels flow from user input (table names, file paths); quotes,
  // backslashes and control characters must not corrupt the JSON.
  tracer.SetLabel("scanraw:\"quoted\\table\"\n\ttab");
  EXPECT_EQ(tracer.label(), "scanraw:\"quoted\\table\"\n\ttab");
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("scanraw:\\\"quoted\\\\table\\\"\\n\\ttab"),
            std::string::npos);
  // No raw control characters survive anywhere in the export.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control char in JSON: " << static_cast<int>(c);
  }
}

TEST(ChunkTracerTest, EmptyLabelOmitsMetadataEvent) {
  ChunkTracer tracer(16);
  tracer.RecordSpan(TraceStage::kRead, ChunkSource::kRaw, 0, 1000, 50);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(JsonEscapeTest, ControlCharactersUseUnicodeEscapes) {
  // Control characters without shorthand escapes use \u00XX.
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonEscape("a\tb\rc"), "a\\tb\\rc");
  // The empty string round-trips.
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(SpanRecorderTest, RecordsIntoTracerAndHistogram) {
  ChunkTracer tracer(16);
  Histogram latency;
  {
    SpanRecorder span(&tracer, &latency, TraceStage::kWrite,
                      ChunkSource::kRaw);
    span.set_chunk_index(42);
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, TraceStage::kWrite);
  EXPECT_EQ(events[0].chunk_index, 42u);
  EXPECT_EQ(latency.count(), 1u);
}

TEST(SpanRecorderTest, CancelSuppressesTraceButNotHistogram) {
  ChunkTracer tracer(16);
  Histogram latency;
  {
    SpanRecorder span(&tracer, &latency, TraceStage::kRead, ChunkSource::kRaw);
    span.Cancel();
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(latency.count(), 1u);
}

TEST(ResourceLogTest, BoundedRing) {
  ResourceLog log(3);
  for (int i = 0; i < 5; ++i) {
    ResourceSample s;
    s.ts_nanos = i;
    log.Append(std::move(s));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_appended(), 5u);
  auto samples = log.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples.front().ts_nanos, 2);
  EXPECT_EQ(samples.back().ts_nanos, 4);
}

TEST(ResourceLogTest, JsonIsArrayWithAdvice) {
  ResourceLog log(8);
  ResourceSample s;
  s.ts_nanos = 1000;
  s.advice = "io-bound";
  log.Append(std::move(s));
  const std::string json = log.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"io-bound\""), std::string::npos);
}

TEST(ResourceSamplerTest, TakesStartAndStopSamples) {
  ResourceLog log(64);
  std::atomic<int> probes{0};
  ResourceSampler sampler(
      &log,
      [&probes] {
        probes.fetch_add(1);
        return ResourceSample();
      },
      std::chrono::milliseconds(1000));  // interval longer than the test
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  // One immediate sample on Start, one final on Stop.
  EXPECT_GE(probes.load(), 2);
  EXPECT_GE(log.size(), 2u);
  sampler.Stop();  // idempotent
}

TEST(ResourceSamplerTest, PeriodicSampling) {
  ResourceLog log(1024);
  ResourceSampler sampler(
      &log, [] { return ResourceSample(); }, std::chrono::milliseconds(1));
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  // 30ms at a 1ms period: demand well below the theoretical 30 to keep the
  // test robust on loaded machines.
  EXPECT_GE(log.size(), 5u);
}

TEST(TelemetryTest, CombinedJsonExport) {
  Telemetry telemetry;
  telemetry.metrics().GetCounter("a")->Add(1);
  telemetry.tracer().RecordSpan(TraceStage::kRead, ChunkSource::kRaw, 0, 0, 1);
  ResourceSample s;
  s.advice = "balanced";
  telemetry.resources().Append(std::move(s));
  const std::string json = telemetry.ToJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"resource_samples\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_recorded\":1"), std::string::npos);
}

TEST(HistogramTest, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.50), 0.0);
  EXPECT_EQ(h.Quantile(0.95), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleEveryQuantile) {
  Histogram h;
  h.Record(4096);  // exactly on a power-of-two bucket boundary
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 4096.0) << "q=" << q;
  }
}

TEST(HistogramTest, BucketBoundaryValuesStayInRange) {
  // Powers of two are the log-bucket edges; quantiles must interpolate
  // within the observed [min, max] and stay monotone across them.
  Histogram h;
  for (int p = 0; p <= 20; ++p) h.Record(1ull << p);
  double prev = 0.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, 1.0) << "q=" << q;
    EXPECT_LE(v, static_cast<double>(1ull << 20)) << "q=" << q;
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // p50 of 21 power-of-two samples lands near 2^10, within one bucket.
  EXPECT_GE(h.Quantile(0.5), 512.0);
  EXPECT_LE(h.Quantile(0.5), 4096.0);
}

TEST(HistogramTest, TwoBucketBoundaryNeighbors) {
  Histogram h;
  h.Record(1024);  // last value of one bucket's range vs first of the next
  h.Record(1025);
  EXPECT_GE(h.Quantile(0.0), 1024.0);
  EXPECT_LE(h.Quantile(1.0), 1025.0);
  EXPECT_LE(h.Quantile(0.5), 1025.0);
}

TEST(ProgressTrackerTest, MarkCompletePinsTo100Percent) {
  VirtualClock clock;
  ProgressTracker tracker(/*bytes_total=*/1000, &clock);
  tracker.AddBytes(700);  // rounding / estimate error: bytes short of total
  tracker.CountChunk();
  clock.AdvanceNanos(1000000);
  QueryProgress before = tracker.Snapshot();
  EXPECT_FALSE(before.complete);
  EXPECT_LT(before.fraction, 1.0);

  tracker.MarkComplete();
  QueryProgress after = tracker.Snapshot();
  EXPECT_TRUE(after.complete);
  EXPECT_DOUBLE_EQ(after.fraction, 1.0);
  EXPECT_DOUBLE_EQ(after.eta_seconds, 0.0);
}

TEST(ProgressTrackerTest, MarkCompleteCoversUnknownTotals) {
  // Discovery scans never learn a byte total; completion must still pin the
  // final report to 100%.
  VirtualClock clock;
  ProgressTracker tracker(/*bytes_total=*/0, &clock);
  tracker.AddBytes(123);
  EXPECT_DOUBLE_EQ(tracker.Snapshot().fraction, 0.0);
  tracker.MarkComplete();
  QueryProgress p = tracker.Snapshot();
  EXPECT_TRUE(p.complete);
  EXPECT_DOUBLE_EQ(p.fraction, 1.0);
}

TEST(ProgressReporterTest, FinalCallbackReportsCompletion) {
  ProgressTracker tracker(/*bytes_total=*/100);
  tracker.AddBytes(100);
  Mutex mu;
  std::vector<QueryProgress> reports;
  ProgressReporter reporter(
      &tracker,
      [&](const QueryProgress& p) {
        MutexLock lock(mu);
        reports.push_back(p);
      },
      /*interval_ms=*/1000);
  reporter.Start();
  tracker.MarkComplete();  // what the pipeline does after a clean drain
  reporter.Stop();
  MutexLock lock(mu);
  ASSERT_GE(reports.size(), 2u);  // one on Start, one final on Stop
  EXPECT_TRUE(reports.back().complete);
  EXPECT_DOUBLE_EQ(reports.back().fraction, 1.0);
}

TEST(ResourceSamplerTest, StopWithoutStartStillRecordsFinalProbe) {
  ResourceLog log(16);
  std::atomic<int> probes{0};
  ResourceSampler sampler(
      &log,
      [&probes] {
        probes.fetch_add(1);
        return ResourceSample();
      },
      std::chrono::milliseconds(1000));
  // A query can finish before its sampler is ever started; the series must
  // still get its one settled-end-state sample.
  sampler.Stop();
  EXPECT_EQ(probes.load(), 1);
  EXPECT_EQ(log.size(), 1u);
  sampler.Stop();  // the final probe is exactly-once
  EXPECT_EQ(probes.load(), 1);
  EXPECT_EQ(log.size(), 1u);
}

TEST(ResourceSamplerTest, FinalProbeIsExactlyOnceAcrossStops) {
  ResourceLog log(16);
  std::atomic<int> probes{0};
  ResourceSampler sampler(
      &log,
      [&probes] {
        probes.fetch_add(1);
        return ResourceSample();
      },
      std::chrono::milliseconds(1000));
  sampler.Start();
  sampler.Stop();
  const int after_first_stop = probes.load();
  EXPECT_EQ(after_first_stop, 2);  // start sample + final sample
  sampler.Stop();
  sampler.Stop();
  EXPECT_EQ(probes.load(), after_first_stop);
}

TEST(CurrentThreadIdTest, DistinctPerThreadStableWithin) {
  const uint32_t main_id = CurrentThreadId();
  EXPECT_EQ(CurrentThreadId(), main_id);
  uint32_t other_id = main_id;
  std::thread t([&other_id] { other_id = CurrentThreadId(); });
  t.join();
  EXPECT_NE(other_id, main_id);
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
