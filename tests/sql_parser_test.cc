#include <gtest/gtest.h>

#include "genomics/sam.h"
#include "sql/sql_parser.h"

namespace scanraw {
namespace {

Schema TestSchema() { return Schema::AllUint32(8); }

TEST(SqlParserTest, SimpleSum) {
  auto parsed = ParseSelect("SELECT SUM(C0 + C1) FROM t", TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->table, "t");
  EXPECT_EQ(parsed->spec.sum_columns, (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(parsed->spec.predicate.empty());
  EXPECT_FALSE(parsed->spec.group_by_column.has_value());
}

TEST(SqlParserTest, CountStar) {
  auto parsed = ParseSelect("SELECT COUNT(*) FROM events;", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->table, "events");
  EXPECT_TRUE(parsed->spec.sum_columns.empty());
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto parsed =
      ParseSelect("select sum(C2) from t where C3 between 1 and 9",
                  TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->spec.predicate.range.has_value());
  EXPECT_EQ(parsed->spec.predicate.range->column, 3u);
  EXPECT_EQ(parsed->spec.predicate.range->lo, 1);
  EXPECT_EQ(parsed->spec.predicate.range->hi, 9);
}

TEST(SqlParserTest, ComparisonOperatorsCombine) {
  auto parsed = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE C0 >= 10 AND C0 < 20", TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->spec.predicate.range.has_value());
  EXPECT_EQ(parsed->spec.predicate.range->lo, 10);
  EXPECT_EQ(parsed->spec.predicate.range->hi, 19);
}

TEST(SqlParserTest, EqualityIsPointRange) {
  auto parsed =
      ParseSelect("SELECT COUNT(*) FROM t WHERE C5 = 42", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->spec.predicate.range->lo, 42);
  EXPECT_EQ(parsed->spec.predicate.range->hi, 42);
}

TEST(SqlParserTest, GreaterAndLessAreExclusive) {
  auto parsed = ParseSelect("SELECT COUNT(*) FROM t WHERE C1 > 5 AND C1 < 8",
                            TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->spec.predicate.range->lo, 6);
  EXPECT_EQ(parsed->spec.predicate.range->hi, 7);
}

TEST(SqlParserTest, LikeOnStringColumn) {
  auto parsed = ParseSelect(
      "SELECT CIGAR, COUNT(*) FROM reads WHERE SEQ LIKE '%ACGT%' "
      "GROUP BY CIGAR",
      SamSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->table, "reads");
  ASSERT_TRUE(parsed->spec.predicate.pattern.has_value());
  EXPECT_EQ(parsed->spec.predicate.pattern->column,
            static_cast<size_t>(kSamSeq));
  EXPECT_EQ(parsed->spec.predicate.pattern->pattern, "ACGT");
  ASSERT_TRUE(parsed->spec.group_by_column.has_value());
  EXPECT_EQ(*parsed->spec.group_by_column, static_cast<size_t>(kSamCigar));
}

TEST(SqlParserTest, CombinedRangeAndLike) {
  auto parsed = ParseSelect(
      "SELECT COUNT(*) FROM reads WHERE MAPQ BETWEEN 30 AND 60 AND "
      "SEQ LIKE '%TTT%'",
      SamSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->spec.predicate.range.has_value());
  EXPECT_TRUE(parsed->spec.predicate.pattern.has_value());
}

TEST(SqlParserTest, NegativeNumbers) {
  Schema schema(std::vector<ColumnDef>{{"delta", FieldType::kInt64}});
  auto parsed = ParseSelect(
      "SELECT SUM(delta) FROM t WHERE delta BETWEEN -100 AND -1", schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->spec.predicate.range->lo, -100);
  EXPECT_EQ(parsed->spec.predicate.range->hi, -1);
}

TEST(SqlParserTest, BareColumnRequiresGroupBy) {
  EXPECT_TRUE(ParseSelect("SELECT C0 FROM t", TestSchema())
                  .status()
                  .IsInvalidArgument());
  auto ok = ParseSelect("SELECT C0, COUNT(*) FROM t GROUP BY C0",
                        TestSchema());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(SqlParserTest, Errors) {
  const Schema schema = TestSchema();
  // Unknown column.
  EXPECT_FALSE(ParseSelect("SELECT SUM(NOPE) FROM t", schema).ok());
  // Missing FROM.
  EXPECT_FALSE(ParseSelect("SELECT SUM(C0) t", schema).ok());
  // SUM over string column.
  EXPECT_FALSE(ParseSelect("SELECT SUM(SEQ) FROM r", SamSchema()).ok());
  // LIKE on numeric column.
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM t WHERE C0 LIKE '%x%'", schema).ok());
  // Range on string column.
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM r WHERE SEQ > 5", SamSchema()).ok());
  // Unterminated string.
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM r WHERE SEQ LIKE '%x", SamSchema())
          .ok());
  // Ranges on two different columns (unsupported).
  EXPECT_EQ(ParseSelect("SELECT COUNT(*) FROM t WHERE C0 > 1 AND C1 < 5",
                        schema)
                .status()
                .code(),
            StatusCode::kUnimplemented);
  // Garbage after statement.
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) FROM t banana", schema).ok());
  // Unsupported LIKE shape.
  EXPECT_EQ(ParseSelect("SELECT COUNT(*) FROM r WHERE SEQ LIKE 'a%b'",
                        SamSchema())
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(SqlParserTest, MinMaxAvg) {
  auto parsed = ParseSelect(
      "SELECT MIN(C0), MAX(C1), AVG(C2) FROM t", TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->spec.minmax_columns, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(parsed->spec.sum_columns, (std::vector<size_t>{2}));
  EXPECT_TRUE(parsed->has_avg);
  // MIN over a string column is rejected.
  EXPECT_FALSE(ParseSelect("SELECT MIN(SEQ) FROM r", SamSchema()).ok());
}

TEST(SqlParserTest, ParseSelectTableOnly) {
  auto table = ParseSelectTable("SELECT SUM(whatever) FROM my_table WHERE x");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table, "my_table");
  EXPECT_FALSE(ParseSelectTable("SELECT 1").ok());
}

// The parsed spec actually runs: end-to-end with the executor.
TEST(SqlParserTest, ParsedSpecExecutes) {
  auto parsed = ParseSelect(
      "SELECT SUM(C0) FROM t WHERE C1 BETWEEN 10 AND 20", TestSchema());
  ASSERT_TRUE(parsed.ok());
  BinaryChunk chunk(0);
  ColumnVector c0(FieldType::kUint32), c1(FieldType::kUint32);
  for (uint32_t i = 0; i < 30; ++i) {
    c0.AppendUint32(i);
    c1.AppendUint32(i);
  }
  ASSERT_TRUE(chunk.AddColumn(0, std::move(c0)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(c1)).ok());
  QueryExecutor exec(parsed->spec);
  ASSERT_TRUE(exec.Consume(chunk).ok());
  QueryResult r = exec.Finish();
  EXPECT_EQ(r.rows_matched, 11u);             // 10..20 inclusive
  EXPECT_EQ(r.total_sum, (10u + 20u) * 11 / 2);
}

}  // namespace
}  // namespace scanraw
