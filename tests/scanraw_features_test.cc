// Tests for the extension features around the core operator: shared-scan
// multi-query execution (§7 future work), the positional map cache (§2),
// conversion-time sketches (§3.3), catalog persistence / restart recovery,
// and write-failure isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "datagen/csv_generator.h"
#include "genomics/sam.h"
#include "io/file.h"
#include "scanraw/scan_raw.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  std::string test = testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  for (char& c : test) {
    if (c == '/') c = '_';
  }
  return testing::TempDir() + "/feat_" + test + "_" + name;
}

struct Fixture {
  std::string csv_path;
  CsvFileInfo info;
  Schema schema;
  std::unique_ptr<ScanRawManager> manager;

  static Fixture Make(const std::string& name, const ScanRawOptions& options,
                      uint64_t rows = 4000, size_t cols = 8) {
    Fixture f;
    f.csv_path = TempPath(name + ".csv");
    CsvSpec spec;
    spec.num_rows = rows;
    spec.num_columns = cols;
    spec.seed = 5;
    auto info = GenerateCsvFile(f.csv_path, spec);
    EXPECT_TRUE(info.ok());
    f.info = *info;
    f.schema = CsvSchema(spec);
    ScanRawManager::Config config;
    config.db_path = TempPath(name + ".db");
    auto manager = ScanRawManager::Create(config);
    EXPECT_TRUE(manager.ok());
    f.manager = std::move(*manager);
    EXPECT_TRUE(
        f.manager->RegisterRawFile("t", f.csv_path, f.schema, options).ok());
    return f;
  }
};

ScanRawOptions BaseOptions() {
  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 2;
  options.chunk_rows = 500;          // 8 chunks at 4000 rows
  options.cache_capacity_chunks = 4;
  return options;
}

// ------------------------------------------------- multi-query shared scan

TEST(MultiQueryTest, SharedScanMatchesIndividualQueries) {
  auto f = Fixture::Make("mq", BaseOptions());
  ScanRaw* op = nullptr;
  {
    // Force the operator into existence via the manager.
    QuerySpec warm;
    warm.sum_columns = {0};
    ASSERT_TRUE(f.manager->Query("t", warm).ok());
    op = f.manager->GetOperator("t");
    ASSERT_NE(op, nullptr);
  }
  QuerySpec q1;
  q1.sum_columns = {0, 1};
  QuerySpec q2;
  q2.sum_columns = {2};
  q2.predicate.range = RangePredicate{3, 0, 1 << 30};
  QuerySpec q3;
  q3.group_by_column = 4;

  auto batch = op->ExecuteQueries({q1, q2, q3});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);

  auto single1 = op->ExecuteQuery(q1);
  auto single2 = op->ExecuteQuery(q2);
  auto single3 = op->ExecuteQuery(q3);
  ASSERT_TRUE(single1.ok() && single2.ok() && single3.ok());
  EXPECT_EQ((*batch)[0].total_sum, single1->total_sum);
  EXPECT_EQ((*batch)[0].rows_matched, single1->rows_matched);
  EXPECT_EQ((*batch)[1].total_sum, single2->total_sum);
  EXPECT_EQ((*batch)[1].rows_matched, single2->rows_matched);
  EXPECT_EQ((*batch)[2].groups.size(), single3->groups.size());
  EXPECT_EQ((*batch)[0].total_sum, f.info.column_sums[0] + f.info.column_sums[1]);
}

TEST(MultiQueryTest, SingleSharedPassOverRawFile) {
  auto f = Fixture::Make("mq_pass", BaseOptions());
  QuerySpec q1;
  q1.sum_columns = {0};
  QuerySpec q2;
  q2.sum_columns = {1};
  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, BaseOptions());
  auto batch = op.ExecuteQueries({q1, q2});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  // Both queries answered with exactly one pass: 8 raw chunk reads.
  EXPECT_EQ(op.profile().chunks_from_raw.load(), 8u);
  EXPECT_EQ((*batch)[0].total_sum, f.info.column_sums[0]);
  EXPECT_EQ((*batch)[1].total_sum, f.info.column_sums[1]);
}

TEST(MultiQueryTest, EmptyBatch) {
  auto f = Fixture::Make("mq_empty", BaseOptions());
  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, BaseOptions());
  auto batch = op.ExecuteQueries({});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

// ------------------------------------------------------ positional map cache

TEST(PositionalMapCacheTest, ReusedAcrossQueries) {
  auto options = BaseOptions();
  options.policy = LoadPolicy::kExternalTables;
  options.cache_capacity_chunks = 0;  // force raw re-scans
  options.cache_positional_maps = true;
  auto f = Fixture::Make("pmc", options);
  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, options);

  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);
  auto r1 = op.ExecuteQuery(query);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(op.positional_maps().size(), 8u);
  const int64_t tokenize_chunks_q1 = op.profile().tokenize_time.intervals();
  EXPECT_EQ(tokenize_chunks_q1, 8);

  auto r2 = op.ExecuteQuery(query);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->total_sum, f.info.total_sum);
  // Second query reused every cached map: no new TOKENIZE work at all.
  EXPECT_EQ(op.profile().tokenize_time.intervals(), tokenize_chunks_q1);
}

TEST(PositionalMapCacheTest, PartialMapsExtended) {
  auto options = BaseOptions();
  options.policy = LoadPolicy::kExternalTables;
  options.cache_capacity_chunks = 0;
  options.cache_positional_maps = true;
  auto f = Fixture::Make("pmc_ext", options);
  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, options);

  // Query on a prefix of the columns builds partial maps...
  QuerySpec narrow;
  narrow.sum_columns = {0, 1};
  ASSERT_TRUE(op.ExecuteQuery(narrow).ok());
  // ...which a wider query then extends (and the result is still right).
  QuerySpec wide;
  for (size_t c = 0; c < 8; ++c) wide.sum_columns.push_back(c);
  auto r = op.ExecuteQuery(wide);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->total_sum, f.info.total_sum);
  // And a narrow query afterwards reuses the widened maps.
  auto r2 = op.ExecuteQuery(narrow);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->total_sum, f.info.column_sums[0] + f.info.column_sums[1]);
}

TEST(PositionalMapCacheTest, CapacityBounded) {
  const PosmapDialect dialect;
  PositionalMapCache cache(2);
  auto map = std::make_shared<PositionalMap>(4, 3);
  cache.Insert(1, map, dialect);
  cache.Insert(2, map, dialect);
  cache.Insert(3, map, dialect);  // evicts chunk 1 (FIFO)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(1, dialect), nullptr);
  EXPECT_NE(cache.Lookup(3, dialect), nullptr);
  EXPECT_GT(cache.MemoryBytes(), 0u);
}

TEST(PositionalMapCacheTest, NarrowerMapNeverReplacesWider) {
  const PosmapDialect dialect;
  PositionalMapCache cache(4);
  cache.Insert(1, std::make_shared<PositionalMap>(4, 6), dialect);
  cache.Insert(1, std::make_shared<PositionalMap>(4, 2), dialect);
  EXPECT_EQ(cache.Lookup(1, dialect)->fields_per_row(), 6u);
  cache.Insert(1, std::make_shared<PositionalMap>(4, 8), dialect);
  EXPECT_EQ(cache.Lookup(1, dialect)->fields_per_row(), 8u);
}

// --------------------------------------------------------------- sketches

TEST(SketchesIntegrationTest, CollectedDuringConversionOnce) {
  auto options = BaseOptions();
  options.policy = LoadPolicy::kExternalTables;
  options.collect_sketches = true;
  options.cache_capacity_chunks = 0;  // re-scan every query
  auto f = Fixture::Make("sketch", options);
  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, options);
  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);
  ASSERT_TRUE(op.ExecuteQuery(query).ok());
  ASSERT_TRUE(op.ExecuteQuery(query).ok());
  // Each chunk contributes exactly once despite two full scans.
  EXPECT_EQ(op.sketches().chunks_added(), 8u);
  // 4000 near-unique random uint32 values: estimate within KMV error.
  const double distinct = op.sketches().EstimateDistinct(0);
  EXPECT_GT(distinct, 3000.0);
  EXPECT_LT(distinct, 5200.0);
  EXPECT_FALSE(op.sketches().Sample(0).empty());
}

// ------------------------------------------------- persistence and restart

TEST(RestartTest, CatalogAndStorageSurviveRestart) {
  const std::string csv = TempPath("restart.csv");
  const std::string db = TempPath("restart.db");
  const std::string catalog_file = TempPath("restart.catalog");
  CsvSpec spec;
  spec.num_rows = 4000;
  spec.num_columns = 8;
  auto info = GenerateCsvFile(csv, spec);
  ASSERT_TRUE(info.ok());
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kFullLoad;

  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);

  // Session 1: load everything, persist the catalog.
  {
    ScanRawManager::Config config;
    config.db_path = db;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(
        (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options).ok());
    auto result = (*manager)->Query("t", query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->total_sum, info->total_sum);
    ASSERT_TRUE((*manager)->SaveCatalog(catalog_file).ok());
  }

  // Session 2: reopen the database and catalog; DELETE the raw file to
  // prove queries run purely from recovered storage.
  ASSERT_TRUE(RemoveFileIfExists(csv).ok());
  {
    ScanRawManager::Config config;
    config.db_path = db;
    config.reuse_existing_db = true;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->LoadCatalog(catalog_file).ok());
    ASSERT_TRUE((*manager)->AttachOptions("t", options).ok());
    EXPECT_TRUE((*manager)->IsRetired("t"));  // fully loaded, no operator
    auto result = (*manager)->Query("t", query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info->total_sum);
  }
}

TEST(RestartTest, PartiallyLoadedTableResumesLoading) {
  const std::string csv = TempPath("resume.csv");
  const std::string db = TempPath("resume.db");
  const std::string catalog_file = TempPath("resume.catalog");
  CsvSpec spec;
  spec.num_rows = 4000;
  spec.num_columns = 8;
  auto info = GenerateCsvFile(csv, spec);
  ASSERT_TRUE(info.ok());
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kInvisibleLoading;
  options.invisible_chunks_per_query = 3;

  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);

  double fraction_before = 0;
  {
    ScanRawManager::Config config;
    config.db_path = db;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(
        (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options).ok());
    ASSERT_TRUE((*manager)->Query("t", query).ok());
    fraction_before = (*manager)->catalog()->GetTable("t")->LoadedFraction();
    EXPECT_GT(fraction_before, 0.0);
    EXPECT_LT(fraction_before, 1.0);
    ASSERT_TRUE((*manager)->SaveCatalog(catalog_file).ok());
  }
  {
    ScanRawManager::Config config;
    config.db_path = db;
    config.reuse_existing_db = true;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE((*manager)->LoadCatalog(catalog_file).ok());
    ASSERT_TRUE((*manager)->AttachOptions("t", options).ok());
    auto result = (*manager)->Query("t", query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info->total_sum);
    ScanRaw* op = (*manager)->GetOperator("t");
    ASSERT_NE(op, nullptr);
    op->WaitForWrites();
    // Loading resumed where it left off.
    EXPECT_GT((*manager)->catalog()->GetTable("t")->LoadedFraction(),
              fraction_before);
  }
}

TEST(RestartTest, LoadCatalogRejectedWithLiveOperators) {
  auto f = Fixture::Make("live", BaseOptions());
  QuerySpec query;
  query.sum_columns = {0};
  ASSERT_TRUE(f.manager->Query("t", query).ok());
  ASSERT_NE(f.manager->GetOperator("t"), nullptr);
  EXPECT_TRUE(
      f.manager->LoadCatalog(TempPath("nope.catalog")).IsInvalidArgument());
}

// -------------------------------------------------- write failure isolation

TEST(WriteFailureTest, QueryStillSucceedsWhenLoadingFails) {
  const std::string csv = TempPath("wf.csv");
  CsvSpec spec;
  spec.num_rows = 2000;
  spec.num_columns = 4;
  auto info = GenerateCsvFile(csv, spec);
  ASSERT_TRUE(info.ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", csv, CsvSchema(spec), 500).ok());
  // Inject write failures by backing the database with /dev/full, where
  // every write fails with ENOSPC.
  if (!FileExists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  auto failing = StorageManager::OpenExisting("/dev/full");
  ASSERT_TRUE(failing.ok());
  DiskArbiter arbiter;
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kSpeculativeLoading;
  ScanRaw op("t", &catalog, failing->get(), &arbiter, nullptr, options);
  QuerySpec query;
  for (size_t c = 0; c < 4; ++c) query.sum_columns.push_back(c);
  // The query itself must succeed even though every speculative write fails.
  auto result = op.ExecuteQuery(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info->total_sum);
  op.WaitForWrites();
  // Speculative writes degrade gracefully: the failure is counted and the
  // query-fatal write_status stays clean (only full/invisible loading treat
  // a failed write as a query error).
  EXPECT_TRUE(op.write_status().ok());
  EXPECT_GT(op.profile().write_failures.load(), 0u);
  EXPECT_DOUBLE_EQ(catalog.GetTable("t")->LoadedFraction(), 0.0);
  // A follow-up query is still correct.
  auto again = op.ExecuteQuery(query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->total_sum, info->total_sum);
}

// ----------------------------------------------------- push-down selection

TEST(PushdownSelectionTest, FiltersDuringParseWithoutPoisoningState) {
  auto options = BaseOptions();
  options.policy = LoadPolicy::kExternalTables;
  options.pushdown_selection = true;
  auto f = Fixture::Make("pushdown", options);

  QuerySpec filtered;
  filtered.sum_columns = {0, 1};
  filtered.predicate.range = RangePredicate{2, 0, 1 << 29};  // ~25% of rows

  // Reference result without push-down.
  auto ref_options = BaseOptions();
  ref_options.policy = LoadPolicy::kExternalTables;
  ScanRaw ref_op("t", f.manager->catalog(), f.manager->storage(),
                 f.manager->arbiter(), nullptr, ref_options);
  auto want = ref_op.ExecuteQuery(filtered);
  ASSERT_TRUE(want.ok());

  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, options);
  auto got = op.ExecuteQuery(filtered);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->rows_matched, want->rows_matched);
  EXPECT_EQ(got->total_sum, want->total_sum);
  // Push-down pruned rows before the engine saw them.
  EXPECT_LT(got->rows_scanned, want->rows_scanned);

  // Filtered chunks were neither cached nor loaded...
  EXPECT_EQ(op.cache().size(), 0u);
  EXPECT_DOUBLE_EQ(f.manager->catalog()->GetTable("t")->LoadedFraction(),
                   0.0);
  // ...so an unfiltered query afterwards is still complete and correct.
  QuerySpec full;
  for (size_t c = 0; c < 8; ++c) full.sum_columns.push_back(c);
  auto all = op.ExecuteQuery(full);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->total_sum, f.info.total_sum);
  EXPECT_EQ(all->rows_scanned, 4000u);
}

TEST(PushdownSelectionTest, IgnoredOutsideExternalTables) {
  auto options = BaseOptions();
  options.policy = LoadPolicy::kFullLoad;
  options.pushdown_selection = true;  // must be ignored for loading policies
  auto f = Fixture::Make("pushdown_load", options);
  QuerySpec filtered;
  filtered.sum_columns = {0};
  filtered.predicate.range = RangePredicate{1, 0, 1 << 29};
  auto result = f.manager->Query("t", filtered);
  ASSERT_TRUE(result.ok());
  // Full chunks were loaded (push-down suppressed), so everything is
  // complete in the database.
  auto meta = f.manager->catalog()->GetTable("t");
  uint64_t loaded_rows = 0;
  for (const auto& cm : meta->chunks) {
    if (!cm.segments.empty()) loaded_rows += cm.num_rows;
  }
  EXPECT_EQ(loaded_rows, 4000u);
}

// -------------------------------------------------------- sorted loading

TEST(SortedLoadTest, StoredChunksAreSortedAndQueriesUnchanged) {
  auto options = BaseOptions();
  options.policy = LoadPolicy::kFullLoad;
  options.sort_column_before_load = 0;
  auto f = Fixture::Make("sorted", options);
  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);
  auto r1 = f.manager->Query("t", query);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->total_sum, f.info.total_sum);

  // Every stored chunk is ascending on column 0.
  auto meta = f.manager->catalog()->GetTable("t");
  ASSERT_TRUE(meta.ok());
  for (const auto& cm : meta->chunks) {
    ASSERT_FALSE(cm.segments.empty());
    auto chunk = f.manager->storage()->ReadChunkColumns(cm, {0});
    ASSERT_TRUE(chunk.ok());
    auto values = chunk->column(0).AsUint32();
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()))
        << "chunk " << cm.chunk_index;
  }

  // Queries served from the (sorted) database still compute the same
  // aggregate.
  auto r2 = f.manager->Query("t", query);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->total_sum, f.info.total_sum);
}

TEST(SortedLoadTest, CompressedSortedSegmentsSmallerAndCorrect) {
  const std::string csv = TempPath("compress.csv");
  CsvSpec spec;
  spec.num_rows = 4000;
  spec.num_columns = 8;
  spec.seed = 5;
  auto info = GenerateCsvFile(csv, spec);
  ASSERT_TRUE(info.ok());
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kFullLoad;
  options.sort_column_before_load = 0;
  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);

  uint64_t plain_bytes = 0, packed_bytes = 0;
  for (bool compress : {false, true}) {
    ScanRawManager::Config config;
    config.db_path = TempPath(compress ? "packed.db" : "plain.db");
    config.compress_segments = compress;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(
        (*manager)->RegisterRawFile("t", csv, CsvSchema(spec), options).ok());
    auto result = (*manager)->Query("t", query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info->total_sum);
    // Re-query from the database to prove compressed segments decode.
    auto again = (*manager)->Query("t", query);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->total_sum, info->total_sum);
    (compress ? packed_bytes : plain_bytes) =
        (*manager)->storage()->bytes_written();
  }
  // Sorting clusters column 0, so at least that column delta-compresses;
  // the others are random uint32 (~5 varint bytes), leaving a net win.
  EXPECT_LT(packed_bytes, plain_bytes);
}

// ----------------------------------------------- resource monitor / admission

TEST(ResourceMonitorTest, SnapshotsLivePipeline) {
  auto options = BaseOptions();
  options.output_buffer_capacity = 1;  // engine-bound: we do not consume
  auto f = Fixture::Make("resmon", options);
  ScanRaw op("t", f.manager->catalog(), f.manager->storage(),
             f.manager->arbiter(), nullptr, options);
  auto run = op.StartQuery({0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(run.ok());
  // Without consumption, the pipeline stuffs up from the back.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto snapshot = (*run)->Resources();
  EXPECT_EQ(snapshot.num_workers, 2u);
  EXPECT_EQ(snapshot.output_buffer_capacity, 1u);
  EXPECT_GE(snapshot.output_buffer_size, 1u);
  EXPECT_NE(snapshot.advice, ResourceSnapshot::Advice::kIoBound);
  // Drain; at the end the pipeline reports idle/IO-bound.
  while (true) {
    auto next = (*run)->Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
  }
  (*run)->Finish();
  auto done = (*run)->Resources();
  EXPECT_EQ(done.busy_workers, 0u);
  EXPECT_EQ(done.output_buffer_size, 0u);
}

TEST(DelayedAdmissionTest, QueriesWaitForBackgroundWrites) {
  auto options = BaseOptions();
  options.delay_admission_for_writes = true;
  auto f = Fixture::Make("delayed", options);
  QuerySpec query;
  for (size_t c = 0; c < 8; ++c) query.sum_columns.push_back(c);
  for (int q = 0; q < 4; ++q) {
    auto result = f.manager->Query("t", query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, f.info.total_sum);
  }
  // With admission delayed behind the safeguard flush, progress per query
  // is the full cache size every time.
  ScanRaw* op = f.manager->GetOperator("t");
  if (op != nullptr) op->WaitForWrites();
  EXPECT_DOUBLE_EQ(f.manager->catalog()->GetTable("t")->LoadedFraction(),
                   1.0);
}

// ------------------------------------------------------- SAM multi-query

TEST(MultiQueryTest, SamSharedScanWithDifferentPredicates) {
  const std::string sam = TempPath("mq.sam");
  SamGenSpec spec;
  spec.num_reads = 2000;
  spec.seed = 77;
  auto info = GenerateSamFile(sam, spec);
  ASSERT_TRUE(info.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("reads", sam, SamSchema(), 256).ok());
  auto storage = StorageManager::Create(TempPath("mq_sam.db"));
  ASSERT_TRUE(storage.ok());
  DiskArbiter arbiter;
  ScanRaw op("reads", &catalog, storage->get(), &arbiter, nullptr,
             BaseOptions());
  QuerySpec variant = CigarDistributionQuery(spec.pattern);
  QuerySpec mapq_histogram;
  mapq_histogram.group_by_column = kSamMapq;
  auto batch = op.ExecuteQueries({variant, mapq_histogram});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ((*batch)[0].rows_matched, info->matching_reads);
  EXPECT_EQ((*batch)[1].rows_matched, spec.num_reads);
  EXPECT_LE((*batch)[1].groups.size(), 61u);  // MAPQ in [0, 60]
}

// ------------------------------------------------------- manager behavior

TEST(ManagerTest, MultipleTablesShareOneDatabase) {
  CsvSpec spec_a;
  spec_a.num_rows = 1000;
  spec_a.num_columns = 3;
  spec_a.seed = 1;
  CsvSpec spec_b;
  spec_b.num_rows = 800;
  spec_b.num_columns = 5;
  spec_b.seed = 2;
  const std::string csv_a = TempPath("a.csv");
  const std::string csv_b = TempPath("b.csv");
  auto info_a = GenerateCsvFile(csv_a, spec_a);
  auto info_b = GenerateCsvFile(csv_b, spec_b);
  ASSERT_TRUE(info_a.ok() && info_b.ok());

  ScanRawManager::Config config;
  config.db_path = TempPath("shared.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.policy = LoadPolicy::kFullLoad;
  options.chunk_rows = 200;
  options.num_workers = 2;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("a", csv_a, CsvSchema(spec_a), options).ok());
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("b", csv_b, CsvSchema(spec_b), options).ok());

  // Interleave queries; both tables' segments go into one database file.
  QuerySpec qa;
  for (size_t c = 0; c < 3; ++c) qa.sum_columns.push_back(c);
  QuerySpec qb;
  for (size_t c = 0; c < 5; ++c) qb.sum_columns.push_back(c);
  for (int round = 0; round < 3; ++round) {
    auto ra = (*manager)->Query("a", qa);
    auto rb = (*manager)->Query("b", qb);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->total_sum, info_a->total_sum);
    EXPECT_EQ(rb->total_sum, info_b->total_sum);
  }
  EXPECT_TRUE((*manager)->catalog()->GetTable("a")->FullyLoaded());
  EXPECT_TRUE((*manager)->catalog()->GetTable("b")->FullyLoaded());
  // Both operators retired independently.
  EXPECT_TRUE((*manager)->IsRetired("a"));
  EXPECT_TRUE((*manager)->IsRetired("b"));
  // Unknown tables are rejected cleanly.
  EXPECT_TRUE((*manager)->Query("nope", qa).status().IsNotFound());
}

TEST(ManagerTest, ConcurrentQueriesOnDifferentTables) {
  CsvSpec spec;
  spec.num_rows = 2000;
  spec.num_columns = 4;
  const std::string csv_a = TempPath("ca.csv");
  const std::string csv_b = TempPath("cb.csv");
  spec.seed = 10;
  auto info_a = GenerateCsvFile(csv_a, spec);
  spec.seed = 20;
  auto info_b = GenerateCsvFile(csv_b, spec);
  ASSERT_TRUE(info_a.ok() && info_b.ok());

  ScanRawManager::Config config;
  config.db_path = TempPath("conc.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options = BaseOptions();
  options.chunk_rows = 250;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("a", csv_a, CsvSchema(spec), options).ok());
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("b", csv_b, CsvSchema(spec), options).ok());

  QuerySpec query;
  for (size_t c = 0; c < 4; ++c) query.sum_columns.push_back(c);
  std::atomic<int> failures{0};
  auto worker = [&](const std::string& table, uint64_t want) {
    for (int q = 0; q < 3; ++q) {
      auto result = (*manager)->Query(table, query);
      if (!result.ok() || result->total_sum != want) {
        failures.fetch_add(1);
        return;
      }
    }
  };
  std::thread ta(worker, "a", info_a->total_sum);
  std::thread tb(worker, "b", info_b->total_sum);
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace scanraw
