#include <gtest/gtest.h>

#include "format/parser.h"
#include "format/tokenizer.h"

namespace scanraw {
namespace {

PositionalMap Tokenize(const TextChunk& chunk, const Schema& schema,
                       size_t max_fields = 0) {
  TokenizeOptions opts;
  opts.delimiter = schema.delimiter();
  opts.schema_fields = schema.num_columns();
  opts.max_fields = max_fields;
  auto map = TokenizeChunk(chunk, opts);
  EXPECT_TRUE(map.ok()) << map.status().ToString();
  return std::move(*map);
}

TEST(ScalarParseTest, Uint32Valid) {
  EXPECT_EQ(*ParseUint32("0"), 0u);
  EXPECT_EQ(*ParseUint32("4294967295"), 4294967295u);
  EXPECT_EQ(*ParseUint32("123"), 123u);
}

TEST(ScalarParseTest, Uint32Invalid) {
  EXPECT_TRUE(ParseUint32("").status().IsCorruption());
  EXPECT_TRUE(ParseUint32("-1").status().IsCorruption());
  EXPECT_TRUE(ParseUint32("12x").status().IsCorruption());
  EXPECT_TRUE(ParseUint32("4294967296").status().IsCorruption());
  EXPECT_TRUE(ParseUint32("99999999999999999999").status().IsCorruption());
}

TEST(ScalarParseTest, Int64Valid) {
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(*ParseInt64("+5"), 5);
  EXPECT_EQ(*ParseInt64("-0"), 0);
}

TEST(ScalarParseTest, Int64Invalid) {
  EXPECT_TRUE(ParseInt64("").status().IsCorruption());
  EXPECT_TRUE(ParseInt64("-").status().IsCorruption());
  EXPECT_TRUE(ParseInt64("9223372036854775808").status().IsCorruption());
  EXPECT_TRUE(ParseInt64("-9223372036854775809").status().IsCorruption());
  EXPECT_TRUE(ParseInt64("1.5").status().IsCorruption());
  EXPECT_TRUE(ParseInt64("18446744073709551616").status().IsCorruption());
}

TEST(ScalarParseTest, DoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ScalarParseTest, DoubleInvalid) {
  EXPECT_TRUE(ParseDouble("").status().IsCorruption());
  EXPECT_TRUE(ParseDouble("abc").status().IsCorruption());
  EXPECT_TRUE(ParseDouble("1.5x").status().IsCorruption());
  EXPECT_TRUE(ParseDouble("+-5").status().IsCorruption());
  EXPECT_TRUE(ParseDouble("+").status().IsCorruption());
  EXPECT_TRUE(ParseDouble("+ 1.5").status().IsCorruption());
}

// Regression: the old strtod path copied the field into a 64-byte stack
// buffer and rejected anything longer. Long numeric fields are legitimate
// (high-precision scientific data) and must parse.
TEST(ScalarParseTest, DoubleLongerThan64Chars) {
  const std::string ones(100, '1');  // 1.11...e99, 100 chars
  auto v = ParseDouble(ones);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(*v, 1.1111111111111111e99);

  std::string precise = "3.";
  precise += std::string(80, '1');
  auto p = ParseDouble(precise);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 3.1111111111111111);
}

TEST(ScalarParseTest, TryParseVariantsMatchResultVariants) {
  const char* cases[] = {"0",   "42",  "-7",    "+5",   "4294967296",
                         "1.5", "",    "-",     "+",    "abc",
                         "1e3", "0x10", " 1",   "1 ",   "9223372036854775807"};
  for (const char* c : cases) {
    const std::string_view text(c);
    uint32_t u = 0;
    EXPECT_EQ(TryParseUint32(text.data(), text.data() + text.size(), &u),
              ParseUint32(text).ok())
        << text;
    int64_t i = 0;
    EXPECT_EQ(TryParseInt64(text.data(), text.data() + text.size(), &i),
              ParseInt64(text).ok())
        << text;
    double d = 0;
    EXPECT_EQ(TryParseDouble(text.data(), text.data() + text.size(), &d),
              ParseDouble(text).ok())
        << text;
  }
}

TEST(ParseChunkTest, AllColumns) {
  Schema schema = Schema::AllUint32(3);
  TextChunk chunk = MakeTextChunk("1,2,3\n4,5,6\n", 9);
  PositionalMap map = Tokenize(chunk, schema);
  auto binary = ParseChunk(chunk, map, schema, ParseOptions{});
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(binary->chunk_index(), 9u);
  EXPECT_EQ(binary->num_rows(), 2u);
  EXPECT_EQ(binary->num_columns(), 3u);
  EXPECT_EQ(binary->column(0).AsUint32()[1], 4u);
  EXPECT_EQ(binary->column(2).AsUint32()[0], 3u);
}

TEST(ParseChunkTest, SelectiveParsing) {
  Schema schema = Schema::AllUint32(4);
  TextChunk chunk = MakeTextChunk("1,2,3,4\n5,6,7,8\n");
  PositionalMap map = Tokenize(chunk, schema);
  ParseOptions opts;
  opts.projected_columns = {1, 3};
  auto binary = ParseChunk(chunk, map, schema, opts);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->num_columns(), 2u);
  EXPECT_FALSE(binary->HasColumn(0));
  EXPECT_EQ(binary->column(1).AsUint32()[0], 2u);
  EXPECT_EQ(binary->column(3).AsUint32()[1], 8u);
}

TEST(ParseChunkTest, MixedTypes) {
  Schema schema(std::vector<ColumnDef>{{"id", FieldType::kUint32},
                                       {"delta", FieldType::kInt64},
                                       {"score", FieldType::kDouble},
                                       {"name", FieldType::kString}});
  TextChunk chunk = MakeTextChunk("1,-5,2.5,alice\n2,9,0.25,bob\n");
  PositionalMap map = Tokenize(chunk, schema);
  auto binary = ParseChunk(chunk, map, schema, ParseOptions{});
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(binary->column(0).AsUint32()[0], 1u);
  EXPECT_EQ(binary->column(1).AsInt64()[0], -5);
  EXPECT_DOUBLE_EQ(binary->column(2).AsDouble()[1], 0.25);
  EXPECT_EQ(binary->column(3).StringAt(1), "bob");
}

TEST(ParseChunkTest, PartialMapCoversProjection) {
  Schema schema = Schema::AllUint32(8);
  TextChunk chunk = MakeTextChunk("0,1,2,3,4,5,6,7\n");
  PositionalMap map = Tokenize(chunk, schema, /*max_fields=*/3);
  ParseOptions opts;
  opts.projected_columns = {0, 2};
  auto binary = ParseChunk(chunk, map, schema, opts);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->column(2).AsUint32()[0], 2u);
}

TEST(ParseChunkTest, ColumnBeyondMapRejected) {
  Schema schema = Schema::AllUint32(8);
  TextChunk chunk = MakeTextChunk("0,1,2,3,4,5,6,7\n");
  PositionalMap map = Tokenize(chunk, schema, /*max_fields=*/3);
  ParseOptions opts;
  opts.projected_columns = {5};
  auto binary = ParseChunk(chunk, map, schema, opts);
  ASSERT_FALSE(binary.ok());
  EXPECT_TRUE(binary.status().IsInvalidArgument());
}

TEST(ParseChunkTest, OutOfRangeColumnRejected) {
  Schema schema = Schema::AllUint32(2);
  TextChunk chunk = MakeTextChunk("0,1\n");
  PositionalMap map = Tokenize(chunk, schema);
  ParseOptions opts;
  opts.projected_columns = {7};
  EXPECT_TRUE(ParseChunk(chunk, map, schema, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParseChunkTest, MalformedValueReportsLocation) {
  Schema schema = Schema::AllUint32(2);
  TextChunk chunk = MakeTextChunk("1,2\n3,oops\n", 42);
  PositionalMap map = Tokenize(chunk, schema);
  auto binary = ParseChunk(chunk, map, schema, ParseOptions{});
  ASSERT_FALSE(binary.ok());
  EXPECT_TRUE(binary.status().IsCorruption());
  EXPECT_NE(binary.status().message().find("chunk 42"), std::string::npos);
  EXPECT_NE(binary.status().message().find("row 1"), std::string::npos);
}

TEST(ParseChunkTest, PushdownSelectionFiltersRows) {
  Schema schema = Schema::AllUint32(2);
  TextChunk chunk = MakeTextChunk("10,1\n20,2\n30,3\n40,4\n");
  PositionalMap map = Tokenize(chunk, schema);
  ParseOptions opts;
  opts.pushdown = PushdownFilter{0, 15, 35};
  auto binary = ParseChunk(chunk, map, schema, opts);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->num_rows(), 2u);
  EXPECT_EQ(binary->column(1).AsUint32()[0], 2u);
  EXPECT_EQ(binary->column(1).AsUint32()[1], 3u);
}

TEST(ParseChunkTest, PushdownAllRowsFiltered) {
  Schema schema = Schema::AllUint32(2);
  TextChunk chunk = MakeTextChunk("10,1\n20,2\n");
  PositionalMap map = Tokenize(chunk, schema);
  ParseOptions opts;
  opts.pushdown = PushdownFilter{0, 100, 200};
  auto binary = ParseChunk(chunk, map, schema, opts);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->num_rows(), 0u);
}

TEST(ParseChunkTest, PushdownOnStringRejected) {
  Schema schema(std::vector<ColumnDef>{{"s", FieldType::kString},
                                       {"v", FieldType::kUint32}});
  TextChunk chunk = MakeTextChunk("a,1\n");
  PositionalMap map = Tokenize(chunk, schema);
  ParseOptions opts;
  opts.pushdown = PushdownFilter{0, 0, 10};
  EXPECT_TRUE(ParseChunk(chunk, map, schema, opts)
                  .status()
                  .IsInvalidArgument());
}

// Round-trip property: print -> tokenize -> parse recovers the values.
class ParserRoundTripTest : public testing::TestWithParam<size_t> {};

TEST_P(ParserRoundTripTest, Uint32Columns) {
  const size_t width = GetParam();
  Schema schema = Schema::AllUint32(width);
  const size_t rows = 29;
  std::string data;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < width; ++c) {
      if (c > 0) data.push_back(',');
      data += std::to_string((r * 2654435761u + c * 40503u) % 4294967295u);
    }
    data.push_back('\n');
  }
  TextChunk chunk = MakeTextChunk(std::move(data));
  PositionalMap map = Tokenize(chunk, schema);
  auto binary = ParseChunk(chunk, map, schema, ParseOptions{});
  ASSERT_TRUE(binary.ok());
  ASSERT_EQ(binary->num_rows(), rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < width; ++c) {
      EXPECT_EQ(binary->column(c).AsUint32()[r],
                (r * 2654435761u + c * 40503u) % 4294967295u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ParserRoundTripTest,
                         testing::Values(1, 2, 8, 64, 256));

}  // namespace
}  // namespace scanraw
