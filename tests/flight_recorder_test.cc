// Flight recorder tests: per-thread rings, the lock-free record path under
// concurrency, dump formatting, and the crash-dump integration — a forked
// child running the real pipeline dies at a kill-point and the parent
// asserts the dump file shows what every pipeline thread was doing.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/csv_generator.h"
#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/flight_recorder.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace obs {
namespace {

class FlightRecorderTest : public testing::Test {
 protected:
  void SetUp() override { FlightRecorder::Global()->ResetForTest(); }

  static std::string TempPath(const std::string& suffix) {
    std::string name = testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    return testing::TempDir() + "/flight_" + name + suffix;
  }

  static std::string DumpToString() {
    const std::string path = TempPath(".dump");
    EXPECT_TRUE(FlightRecorder::Global()->DumpToFile(path.c_str()));
    auto data = ReadFileToString(path);
    EXPECT_TRUE(data.ok());
    return data.ok() ? *data : std::string();
  }
};

TEST_F(FlightRecorderTest, RecordsAndDumpsEvents) {
  FlightRecord(FlightEvent::kQueryBegin, 3, 2);
  FlightRecord(FlightEvent::kRead, 7, 4096);
  FlightRecord(FlightEvent::kQueryEnd, 0, 137);
  EXPECT_EQ(FlightRecorder::Global()->events_recorded(), 3u);
  EXPECT_EQ(FlightRecorder::Global()->rings_used(), 1u);

  const std::string dump = DumpToString();
  EXPECT_NE(dump.find("flight recorder: 3 events"), std::string::npos);
  EXPECT_NE(dump.find("query-begin"), std::string::npos);
  EXPECT_NE(dump.find("read"), std::string::npos);
  EXPECT_NE(dump.find("a=7 b=4096"), std::string::npos);
  EXPECT_NE(dump.find("query-end"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingWrapsKeepingTheMostRecentEvents) {
  for (uint64_t i = 0; i < FlightRecorder::kRingEvents + 50; ++i) {
    FlightRecord(FlightEvent::kParse, i, 0);
  }
  EXPECT_EQ(FlightRecorder::Global()->events_recorded(),
            FlightRecorder::kRingEvents + 50);
  const std::string dump = DumpToString();
  // The oldest events were overwritten; the newest survive.
  EXPECT_EQ(dump.find("a=10 b=0"), std::string::npos);
  EXPECT_NE(dump.find("a=" + std::to_string(FlightRecorder::kRingEvents + 49)),
            std::string::npos);
}

TEST_F(FlightRecorderTest, EachThreadGetsItsOwnRing) {
  // Park every thread after recording until all have recorded, so all of
  // them hold their ring claims at the same time: each live thread must
  // get a distinct ring.
  constexpr size_t kThreads = 8;
  // When the whole binary runs in one process (the sanitizer shard), the
  // main thread still holds the ring it claimed in an earlier test; count
  // relative to that baseline.
  const size_t base_rings = FlightRecorder::Global()->rings_used();
  std::atomic<size_t> recorded{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &recorded] {
      for (int i = 0; i < 100; ++i) {
        FlightRecord(FlightEvent::kTokenize, static_cast<uint64_t>(t), i);
      }
      recorded.fetch_add(1);
      while (recorded.load() < kThreads) std::this_thread::yield();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(FlightRecorder::Global()->events_recorded(), kThreads * 100u);
  EXPECT_EQ(FlightRecorder::Global()->events_dropped(), 0u);
  // Every thread held a claim concurrently, so each claimed its own ring,
  // and the sticky ever_claimed flag keeps them all dumpable.
  EXPECT_EQ(FlightRecorder::Global()->rings_used(), base_rings + kThreads);

  const std::string dump = DumpToString();
  std::set<std::string> tids;
  size_t pos = 0;
  while ((pos = dump.find("tid=", pos)) != std::string::npos) {
    size_t end = dump.find(' ', pos);
    tids.insert(dump.substr(pos, end - pos));
    pos = end;
  }
  EXPECT_GE(tids.size(), kThreads);
  EXPECT_LE(tids.size(), kThreads + base_rings);
}

TEST_F(FlightRecorderTest, DropsInsteadOfBlockingWhenAllRingsClaimed) {
  // Hold every ring with parked threads, then record from one more thread:
  // the record path must not block or allocate — it drops and counts.
  std::atomic<bool> release{false};
  std::atomic<size_t> parked{0};
  std::vector<std::thread> holders;
  holders.reserve(FlightRecorder::kNumRings);
  for (size_t i = 0; i < FlightRecorder::kNumRings; ++i) {
    holders.emplace_back([&] {
      FlightRecord(FlightEvent::kNone, 0, 0);  // claims this thread's ring
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() < FlightRecorder::kNumRings) std::this_thread::yield();

  std::thread extra([] { FlightRecord(FlightEvent::kError, 1, 1); });
  extra.join();
  EXPECT_GE(FlightRecorder::Global()->events_dropped(), 1u);

  release.store(true);
  for (std::thread& t : holders) t.join();
}

TEST_F(FlightRecorderTest, ReleasedRingsAreReusedByLaterThreads) {
  for (int round = 0; round < 3; ++round) {
    std::thread t([] { FlightRecord(FlightEvent::kDeliver, 1, 0); });
    t.join();
  }
  // Sequential threads reuse released rings instead of exhausting the pool.
  EXPECT_LE(FlightRecorder::Global()->rings_used(), 3u);
  EXPECT_EQ(FlightRecorder::Global()->events_dropped(), 0u);
}

// The acceptance scenario: a child process runs the real conversion
// pipeline with an armed kill-point, the injected crash dumps the flight
// recorder, and the parent asserts the dump contains events from every
// pipeline stage and more than one thread.
TEST_F(FlightRecorderTest, CrashAtKillPointDumpsEveryPipelineStage) {
  const std::string csv_path = TempPath(".csv");
  const std::string db_path = TempPath(".db");
  const std::string dump_path = TempPath(".crashdump");
  (void)RemoveFileIfExists(dump_path);

  CsvSpec spec;
  spec.num_rows = 2000;
  spec.num_columns = 4;
  spec.seed = 7;
  auto info = GenerateCsvFile(csv_path, spec);
  ASSERT_TRUE(info.ok());

  const pid_t pid = fork();
  if (pid == 0) {
    FlightRecorder::Global()->SetCrashDumpPath(dump_path.c_str());
    FaultPlan plan;
    plan.kill_point = "scanraw.write.before_record";
    plan.kill_point_hit = 3;  // a few chunks flow through every stage first
    ScopedFaultInjection fault(plan);

    ScanRawManager::Config config;
    config.db_path = db_path;
    auto manager = ScanRawManager::Create(config);
    if (!manager.ok()) ::_exit(3);
    ScanRawOptions options;
    options.policy = LoadPolicy::kFullLoad;
    options.num_workers = 2;
    options.chunk_rows = 250;  // 8 chunks
    if (!(*manager)
             ->RegisterRawFile("t", csv_path, CsvSchema(spec), options)
             .ok()) {
      ::_exit(3);
    }
    QuerySpec query;
    query.sum_columns = {0, 1, 2, 3};
    (void)(*manager)->Query("t", query);  // killed mid-load
    ::_exit(3);                           // kill point never fired
  }
  ASSERT_GT(pid, 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), kFaultKillExitCode);

  auto dump_data = ReadFileToString(dump_path);
  ASSERT_TRUE(dump_data.ok()) << "crash dump was not written";
  const std::string& dump = *dump_data;

  // Every pipeline stage left a trace, plus the kill-point itself.
  for (const char* marker : {"query-begin", "read", "tokenize", "parse",
                             "deliver", "write", "kill-point"}) {
    EXPECT_NE(dump.find(marker), std::string::npos)
        << "dump is missing " << marker << " events:\n"
        << dump;
  }

  // Events came from more than one thread (read thread, workers, write
  // thread all record into their own rings).
  std::set<std::string> tids;
  size_t pos = 0;
  while ((pos = dump.find("tid=", pos)) != std::string::npos) {
    size_t end = dump.find(' ', pos);
    tids.insert(dump.substr(pos, end - pos));
    pos = end;
  }
  EXPECT_GE(tids.size(), 3u) << dump;
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
