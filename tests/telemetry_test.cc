// Tests for the telemetry wiring through the SCANRAW pipeline: the §3.3
// resource-advice classification, reconciliation of the PipelineProfile
// counters with catalog state after a multi-query speculative run, and the
// registry / tracer / sampler integration through the ScanRawManager.

#include <gtest/gtest.h>

#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "datagen/csv_generator.h"
#include "obs/explain.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "scanraw/scan_raw.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  std::string test = testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  for (char& c : test) {
    if (c == '/') c = '_';
  }
  return testing::TempDir() + "/telem_" + test + "_" + name;
}

// ----------------------------------------------- advice classification ----

ResourceSnapshot BalancedSnapshot() {
  ResourceSnapshot s;
  s.text_buffer_size = 2;
  s.text_buffer_capacity = 8;
  s.position_buffer_size = 1;
  s.position_buffer_capacity = 8;
  s.output_buffer_size = 3;
  s.output_buffer_capacity = 8;
  s.busy_workers = 2;
  s.num_workers = 4;
  return s;
}

TEST(AdviceTest, BalancedPipeline) {
  EXPECT_EQ(BalancedSnapshot().ComputeAdvice(),
            ResourceSnapshot::Advice::kBalanced);
}

TEST(AdviceTest, NeedMoreCpuWhenSaturatedAndTextFull) {
  // "All worker threads are busy and the text chunk buffer is full" (§3.3).
  ResourceSnapshot s = BalancedSnapshot();
  s.busy_workers = s.num_workers;
  s.text_buffer_size = s.text_buffer_capacity;
  EXPECT_EQ(s.ComputeAdvice(), ResourceSnapshot::Advice::kNeedMoreCpu);
}

TEST(AdviceTest, BusyWorkersAloneAreNotACpuRequest) {
  // Saturated workers with a draining text buffer: conversion keeps up
  // with the disk, no extra CPU needed.
  ResourceSnapshot s = BalancedSnapshot();
  s.busy_workers = s.num_workers;
  s.text_buffer_size = 1;
  EXPECT_EQ(s.ComputeAdvice(), ResourceSnapshot::Advice::kBalanced);
}

TEST(AdviceTest, IoBoundWhenWorkersStarved) {
  ResourceSnapshot s = BalancedSnapshot();
  s.busy_workers = 0;
  s.text_buffer_size = 0;
  s.position_buffer_size = 0;
  s.output_buffer_size = 0;
  EXPECT_EQ(s.ComputeAdvice(), ResourceSnapshot::Advice::kIoBound);
}

TEST(AdviceTest, EngineBoundWhenOutputFull) {
  ResourceSnapshot s = BalancedSnapshot();
  s.output_buffer_size = s.output_buffer_capacity;
  EXPECT_EQ(s.ComputeAdvice(), ResourceSnapshot::Advice::kEngineBound);
}

TEST(AdviceTest, CpuRequestWinsOverEngineBound) {
  // Everything full at once: the CPU request is checked first — it is the
  // state the resource manager can actually act on mid-query.
  ResourceSnapshot s = BalancedSnapshot();
  s.busy_workers = s.num_workers;
  s.text_buffer_size = s.text_buffer_capacity;
  s.output_buffer_size = s.output_buffer_capacity;
  EXPECT_EQ(s.ComputeAdvice(), ResourceSnapshot::Advice::kNeedMoreCpu);
}

TEST(AdviceTest, SequentialPipelineNeverAsksForCpu) {
  // num_workers == 0 (fully sequential conversion) must not classify as a
  // CPU request even with a full text buffer.
  ResourceSnapshot s = BalancedSnapshot();
  s.num_workers = 0;
  s.busy_workers = 0;
  s.text_buffer_size = s.text_buffer_capacity;
  EXPECT_NE(s.ComputeAdvice(), ResourceSnapshot::Advice::kNeedMoreCpu);
}

TEST(AdviceTest, NamesAreStable) {
  EXPECT_EQ(AdviceName(ResourceSnapshot::Advice::kNeedMoreCpu),
            "need-more-cpu");
  EXPECT_EQ(AdviceName(ResourceSnapshot::Advice::kIoBound), "io-bound");
  EXPECT_EQ(AdviceName(ResourceSnapshot::Advice::kEngineBound),
            "engine-bound");
  EXPECT_EQ(AdviceName(ResourceSnapshot::Advice::kBalanced), "balanced");
}

// ----------------------------------------- pipeline integration fixture ---

struct Fixture {
  std::string csv_path;
  CsvFileInfo info;
  Schema schema;
  std::unique_ptr<ScanRawManager> manager;

  static Fixture Make(const std::string& name, const ScanRawOptions& options,
                      uint64_t rows = 4000, size_t cols = 8) {
    Fixture f;
    f.csv_path = TempPath(name + ".csv");
    CsvSpec spec;
    spec.num_rows = rows;
    spec.num_columns = cols;
    spec.seed = 7;
    auto info = GenerateCsvFile(f.csv_path, spec);
    EXPECT_TRUE(info.ok());
    f.info = *info;
    f.schema = CsvSchema(spec);
    ScanRawManager::Config config;
    config.db_path = TempPath(name + ".db");
    auto manager = ScanRawManager::Create(config);
    EXPECT_TRUE(manager.ok());
    f.manager = std::move(*manager);
    EXPECT_TRUE(
        f.manager->RegisterRawFile("t", f.csv_path, f.schema, options).ok());
    return f;
  }
};

ScanRawOptions BaseOptions() {
  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 2;
  options.chunk_rows = 500;  // 8 chunks at 4000 rows
  options.cache_capacity_chunks = 4;
  return options;
}

// Profile counters must reconcile with the catalog after a two-query
// speculative run: every fully loaded chunk was written exactly once, and
// the chunk-source counters account for every chunk of both passes.
TEST(ProfileReconcileTest, CountersMatchCatalogAfterTwoQueries) {
  auto f = Fixture::Make("reconcile", BaseOptions());
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);

  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ScanRaw* op = f.manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  auto second = op->ExecuteQuery(q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->total_sum, f.info.total_sum);
  op->WaitForWrites();
  ASSERT_TRUE(op->write_status().ok());

  const PipelineProfile& profile = op->profile();
  auto meta = f.manager->catalog()->GetTable("t");
  ASSERT_TRUE(meta.ok());

  std::vector<size_t> all_columns;
  for (size_t c = 0; c < 8; ++c) all_columns.push_back(c);
  uint64_t loaded_chunks = 0;
  for (const ChunkMetadata& cm : meta->chunks) {
    if (cm.HasColumnsLoaded(all_columns)) ++loaded_chunks;
  }
  // Exactly-once loading: one write per loaded chunk, no rewrites.
  EXPECT_EQ(profile.chunks_written.load(), loaded_chunks);

  // Both passes delivered all 8 chunks, each attributed to exactly one
  // source.
  EXPECT_EQ(profile.chunks_from_raw.load() + profile.chunks_from_db.load() +
                profile.chunks_from_cache.load(),
            16u);
  // The first pass had no binary data anywhere: 8 raw conversions.
  EXPECT_GE(profile.chunks_from_raw.load(), 8u);

  // The registry mirrors (bound via the manager's telemetry) agree with the
  // atomics they shadow.
  obs::MetricsRegistry& registry = f.manager->telemetry()->metrics();
  EXPECT_EQ(registry.GetCounter("scanraw.chunks_written")->value(),
            profile.chunks_written.load());
  EXPECT_EQ(registry.GetCounter("scanraw.chunks_from_raw")->value(),
            profile.chunks_from_raw.load());
  EXPECT_EQ(registry.GetCounter("scanraw.chunks_from_cache")->value(),
            profile.chunks_from_cache.load());
  EXPECT_EQ(registry.GetCounter("scanraw.chunks_from_db")->value(),
            profile.chunks_from_db.load());
}

TEST(ProfileReconcileTest, ResetClearsRegistryMirrors) {
  auto f = Fixture::Make("reset", BaseOptions());
  QuerySpec q;
  q.sum_columns = {0};
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ScanRaw* op = f.manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();

  obs::MetricsRegistry& registry = f.manager->telemetry()->metrics();
  EXPECT_GT(registry.GetCounter("scanraw.chunks_from_raw")->value(), 0u);
  EXPECT_GT(registry.GetHistogram("scanraw.stage.read_nanos")->count(), 0u);

  // Quiesced (no QueryRun live, writes drained): Reset may run.
  op->profile().Reset();
  EXPECT_EQ(op->profile().chunks_from_raw.load(), 0u);
  EXPECT_EQ(registry.GetCounter("scanraw.chunks_from_raw")->value(), 0u);
  EXPECT_EQ(registry.GetHistogram("scanraw.stage.read_nanos")->count(), 0u);
  EXPECT_EQ(registry.GetHistogram("scanraw.stage.parse_nanos")->count(), 0u);
}

// -------------------------------------------------- manager integration ---

TEST(ManagerTelemetryTest, StageHistogramsAndCacheCountersPopulate) {
  ScanRawOptions options = BaseOptions();
  options.resource_sample_interval_ms = 1;
  auto f = Fixture::Make("stages", options);
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ScanRaw* op = f.manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();

  obs::Telemetry* telemetry = f.manager->telemetry();
  obs::MetricsRegistry& registry = telemetry->metrics();

  // Per-stage latency histograms recorded one entry per chunk-stage.
  EXPECT_GE(registry.GetHistogram("scanraw.stage.read_nanos")->count(), 8u);
  EXPECT_GE(registry.GetHistogram("scanraw.stage.tokenize_nanos")->count(),
            8u);
  EXPECT_GE(registry.GetHistogram("scanraw.stage.parse_nanos")->count(), 8u);
  EXPECT_GT(registry.GetHistogram("scanraw.stage.write_nanos")->count(), 0u);

  // Cache counters mirror the ChunkCache (second query hit the cache).
  EXPECT_GT(registry.GetCounter("scanraw.cache.hits")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("scanraw.cache.hits")->value(),
            op->cache().hits());
  EXPECT_EQ(registry.GetCounter("scanraw.cache.misses")->value(),
            op->cache().misses());
  EXPECT_EQ(registry.GetCounter("scanraw.cache.evictions")->value(),
            op->cache().evictions());

  // The pool submitted tokenize + parse tasks.
  EXPECT_GE(registry.GetCounter("scanraw.pool.tasks_submitted")->value(),
            16u);
  // Gauges are deltas and the pipeline has drained.
  EXPECT_EQ(registry.GetGauge("scanraw.pool.busy_workers")->value(), 0);
  EXPECT_EQ(registry.GetGauge("scanraw.pool.queue_depth")->value(), 0);

  // Storage + arbiter wiring recorded the speculative writes.
  EXPECT_GT(registry.GetCounter("storage.segments_written")->value(), 0u);
  EXPECT_GT(registry.GetCounter("storage.bytes_written")->value(), 0u);
  EXPECT_GT(registry.GetHistogram("disk.reader_wait_nanos")->count(), 0u);

  // The sampler left a resource-advice series with start + end samples.
  EXPECT_GE(telemetry->resources().size(), 2u);

  // Advice occurrences were tallied: the counters sum to the sample count
  // this operator probed (every probe lands in exactly one state).
  const uint64_t advice_total =
      registry.GetCounter("scanraw.advice.need_more_cpu")->value() +
      registry.GetCounter("scanraw.advice.io_bound")->value() +
      registry.GetCounter("scanraw.advice.engine_bound")->value() +
      registry.GetCounter("scanraw.advice.balanced")->value();
  EXPECT_EQ(advice_total, telemetry->resources().total_appended());
}

TEST(ManagerTelemetryTest, TracerRecordsFullChunkLifecycle) {
  auto f = Fixture::Make("trace", BaseOptions());
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ScanRaw* op = f.manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();

  obs::ChunkTracer& tracer = f.manager->telemetry()->tracer();
  auto events = tracer.Snapshot();
  ASSERT_FALSE(events.empty());

  // Every raw chunk of the discovery scan has a complete
  // READ -> TOKENIZE -> PARSE span set; written chunks add WRITE.
  for (uint64_t chunk = 0; chunk < 8; ++chunk) {
    bool read = false, tokenize = false, parse = false;
    for (const obs::TraceEvent& e : events) {
      if (e.chunk_index != chunk) continue;
      read = read || e.stage == obs::TraceStage::kRead;
      tokenize = tokenize || e.stage == obs::TraceStage::kTokenize;
      parse = parse || e.stage == obs::TraceStage::kParse;
    }
    EXPECT_TRUE(read && tokenize && parse) << "chunk " << chunk;
  }
  uint64_t writes = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.stage == obs::TraceStage::kWrite) ++writes;
  }
  EXPECT_EQ(writes, op->profile().chunks_written.load());

  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find_last_of(']'), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ManagerTelemetryTest, ExplicitSinkOverridesManagerSink) {
  obs::Telemetry own_sink;
  ScanRawOptions options = BaseOptions();
  options.telemetry = &own_sink;
  auto f = Fixture::Make("own_sink", options);
  QuerySpec q;
  q.sum_columns = {0};
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ScanRaw* op = f.manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();

  EXPECT_EQ(op->telemetry(), &own_sink);
  EXPECT_GT(own_sink.metrics().GetCounter("scanraw.chunks_from_raw")->value(),
            0u);
  // The manager's sink saw no operator-side chunk traffic.
  EXPECT_EQ(f.manager->telemetry()
                ->metrics()
                .GetCounter("scanraw.chunks_from_raw")
                ->value(),
            0u);
}

// --------------------------------------------------- EXPLAIN ANALYZE e2e ---

TEST(ExplainE2eTest, ColdThenCachedQueriesAttributeProvenance) {
  auto f = Fixture::Make("explain_e2e", BaseOptions());
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);

  obs::ExplainReport cold;
  auto first = f.manager->Query("t", q, &cold);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->total_sum, f.info.total_sum);

  // Cold query: all 8 chunks converted from raw, none cached yet.
  EXPECT_EQ(cold.table, "t");
  EXPECT_EQ(cold.policy, "speculative-loading");
  EXPECT_EQ(cold.chunks_from_raw, 8u);
  EXPECT_EQ(cold.chunks_from_cache, 0u);
  EXPECT_GT(cold.wall_seconds, 0.0);
  EXPECT_FALSE(cold.critical_stage.empty());
  EXPECT_FALSE(cold.stages.empty());
  // Accounting identity: busy + blocked + idle == wall * threads.
  EXPECT_NEAR(cold.busy_seconds_total + cold.blocked_seconds_total +
                  cold.idle_seconds_total,
              cold.wall_seconds *
                  static_cast<double>(cold.threads_accounted),
              0.1 * cold.wall_seconds *
                      static_cast<double>(cold.threads_accounted) +
                  1e-6);

  obs::ExplainReport warm;
  auto second = f.manager->Query("t", q, &warm);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->total_sum, f.info.total_sum);

  // Warm query: the cache (capacity 4) serves part of the file, and the
  // per-query cache-hit delta reflects only this query.
  EXPECT_GT(warm.chunks_from_cache, 0u);
  EXPECT_EQ(warm.cache_hits, warm.chunks_from_cache);
  EXPECT_GT(warm.HitRate(warm.cache_hits, warm.cache_misses), 0.0);
  EXPECT_EQ(warm.chunks_from_cache + warm.chunks_from_db +
                warm.chunks_from_raw,
            8u);
  // The report renders in both formats.
  EXPECT_NE(warm.ToText().find("critical path:"), std::string::npos);
  EXPECT_NE(warm.ToJson().find("\"critical_path\""), std::string::npos);
}

TEST(ExplainE2eTest, SpeculativePayoffIsCreditedToAQuery) {
  auto f = Fixture::Make("explain_payoff", BaseOptions());
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);

  // Run queries until the file is fully loaded; with speculative loading
  // + safeguard each pass makes progress. Some query's report must show
  // written chunks and a loaded-fraction increase.
  bool saw_payoff = false;
  for (int pass = 0; pass < 10 && !f.manager->IsRetired("t"); ++pass) {
    obs::ExplainReport report;
    ASSERT_TRUE(f.manager->Query("t", q, &report).ok());
    ScanRaw* op = f.manager->GetOperator("t");
    if (op != nullptr) op->WaitForWrites();
    if (report.speculation_paid_off) {
      saw_payoff = true;
      EXPECT_GT(report.chunks_written, 0u);
      EXPECT_GT(report.loaded_fraction_after,
                report.loaded_fraction_before);
    }
  }
  EXPECT_TRUE(saw_payoff);
}

TEST(ExplainE2eTest, RetiredTableReportsHeapScanPath) {
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kFullLoad;
  auto f = Fixture::Make("explain_retired", options);
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);

  // Full load: first query loads everything; the table then retires.
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ASSERT_TRUE(f.manager->Query("t", q).ok());  // triggers retirement
  ASSERT_TRUE(f.manager->IsRetired("t"));

  obs::ExplainReport report;
  auto result = f.manager->Query("t", q, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, f.info.total_sum);
  EXPECT_EQ(report.policy, "heap-scan (retired)");
  EXPECT_EQ(report.chunks_from_db, 8u);
  EXPECT_EQ(report.chunks_from_raw, 0u);
  EXPECT_EQ(report.loaded_fraction_before, 1.0);
  bool saw_heap_scan = false;
  for (const obs::ExplainStage& stage : report.stages) {
    if (stage.name == "HEAP_SCAN") saw_heap_scan = true;
  }
  EXPECT_TRUE(saw_heap_scan);
}

TEST(ExplainE2eTest, SkippedChunksSurfaceInReport) {
  // Min/max statistics are computed when a chunk is written (§3.3), so a
  // full load gives every chunk stats; the pruned re-query can then skip
  // all of them.
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kFullLoad;
  options.collect_stats = true;
  auto f = Fixture::Make("explain_skip", options);
  // Sum every column so the full load materializes complete chunks (a
  // narrower query would load only the touched columns and the table
  // would never reach FullyLoaded).
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  ScanRaw* op = f.manager->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();

  // A range no generated value can satisfy: every chunk is pruned by its
  // min/max statistics. Querying the operator directly keeps this on the
  // ScanRaw path (the manager would retire the fully loaded table).
  QuerySpec pruned = q;
  RangePredicate range;
  range.column = 0;
  range.lo = std::numeric_limits<int64_t>::max() - 1;
  range.hi = std::numeric_limits<int64_t>::max();
  pruned.predicate.range = range;
  obs::ExplainReport report;
  auto result = op->ExecuteQuery(pruned, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_matched, 0u);
  EXPECT_EQ(report.chunks_skipped, 8u);
  EXPECT_EQ(report.chunks_from_cache + report.chunks_from_db +
                report.chunks_from_raw,
            0u);

  // The same pruning on the retired heap-scan path.
  ASSERT_TRUE(f.manager->Query("t", q).ok());  // triggers retirement
  ASSERT_TRUE(f.manager->IsRetired("t"));
  obs::ExplainReport retired;
  auto heap_result = f.manager->Query("t", pruned, &retired);
  ASSERT_TRUE(heap_result.ok()) << heap_result.status().ToString();
  EXPECT_EQ(heap_result->rows_matched, 0u);
  EXPECT_EQ(retired.chunks_skipped, 8u);
  EXPECT_EQ(retired.chunks_from_db, 0u);
}

TEST(ExplainE2eTest, ProgressCallbackFiresWithTotals) {
  ScanRawOptions options = BaseOptions();
  std::mutex mu;
  std::vector<obs::QueryProgress> reports;
  options.progress_callback = [&](const obs::QueryProgress& p) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(p);
  };
  options.progress_interval_ms = 1;
  auto f = Fixture::Make("explain_progress", options);
  QuerySpec q;
  for (size_t c = 0; c < 8; ++c) q.sum_columns.push_back(c);

  // Discovery pass: totals unknown, but first + final reports still fire.
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_GE(reports.size(), 2u);
    EXPECT_EQ(reports.back().chunks_delivered, 8u);
    reports.clear();
  }

  // Second pass: the layout is known, so the final report carries totals
  // and a completed fraction.
  ASSERT_TRUE(f.manager->Query("t", q).ok());
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(reports.size(), 2u);
  const obs::QueryProgress& last = reports.back();
  EXPECT_GT(last.bytes_total, 0u);
  EXPECT_EQ(last.chunks_total, 8u);
  EXPECT_EQ(last.chunks_delivered, 8u);
  EXPECT_NEAR(last.fraction, 1.0, 1e-9);
}

}  // namespace
}  // namespace scanraw
