// Workload-intelligence loop tests: WorkloadHistory aggregation and
// persistence, LoadAdvisor ranking, restart reconciliation against the
// catalog, and the end-to-end replay acceptance scenario — a logged query
// mix replayed into a restarted process changes the speculative column
// load order while keeping results byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datagen/csv_generator.h"
#include "db/catalog.h"
#include "db/recovery.h"
#include "io/file.h"
#include "obs/explain.h"
#include "obs/load_advisor.h"
#include "obs/query_log.h"
#include "obs/workload_history.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

using obs::AdvisorPlan;
using obs::LoadAdvisor;
using obs::QueryLog;
using obs::QueryLogEvent;
using obs::TableUsage;
using obs::WorkloadHistory;

std::string TempPath(const std::string& suffix) {
  std::string name =
      testing::UnitTest::GetInstance()->current_test_info()->name();
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  return testing::TempDir() + "/workload_" + name + suffix;
}

QueryLogEvent Event(uint64_t seq, const std::string& table,
                    std::vector<size_t> columns,
                    std::vector<size_t> predicate_columns = {}) {
  QueryLogEvent e;
  e.seq = seq;
  e.table = table;
  e.status = "ok";
  e.columns = std::move(columns);
  e.predicate_columns = std::move(predicate_columns);
  e.rows_scanned = 1000;
  e.rows_matched = 100;
  return e;
}

TEST(WorkloadHistoryTest, ObserveAggregatesPerTableAndColumn) {
  WorkloadHistory history;
  history.Observe(Event(1, "t", {0, 1}));
  history.Observe(Event(2, "t", {0, 2}, {2}));
  history.Observe(Event(3, "u", {5}));

  TableUsage t = history.TableSnapshot("t");
  EXPECT_EQ(t.queries, 2u);
  EXPECT_EQ(t.rows_scanned, 2000u);
  EXPECT_EQ(t.rows_matched, 200u);
  EXPECT_DOUBLE_EQ(t.Selectivity(), 0.1);
  EXPECT_EQ(t.columns.at(0).touches, 2u);
  EXPECT_EQ(t.columns.at(1).touches, 1u);
  EXPECT_EQ(t.columns.at(2).predicates, 1u);
  EXPECT_EQ(t.columns.at(0).last_seq, 2u);
  EXPECT_EQ(history.TableSnapshot("u").queries, 1u);
  EXPECT_EQ(history.TableSnapshot("missing").queries, 0u);
  EXPECT_EQ(history.last_seq(), 3u);
}

TEST(WorkloadHistoryTest, ReplayIsIdempotentBySeq) {
  WorkloadHistory history;
  history.Observe(Event(1, "t", {0}));
  history.Observe(Event(2, "t", {0}));
  // Replaying the same events (or older ones) must not double-count.
  history.Observe(Event(2, "t", {0}));
  history.Observe(Event(1, "t", {0}));
  EXPECT_EQ(history.TableSnapshot("t").queries, 2u);
  EXPECT_EQ(history.TableSnapshot("t").columns.at(0).touches, 2u);
  EXPECT_EQ(history.events_observed(), 2u);
}

TEST(WorkloadHistoryTest, FailedQueriesCountForRecencyOnly) {
  WorkloadHistory history;
  history.Observe(Event(1, "t", {0}));
  QueryLogEvent failed = Event(2, "t", {0, 1});
  failed.status = "IO error: disk exploded";
  history.Observe(failed);
  TableUsage t = history.TableSnapshot("t");
  EXPECT_EQ(t.queries, 1u);                 // failure not counted
  EXPECT_EQ(t.columns.count(1), 0u);        // its columns not counted
  EXPECT_EQ(t.last_seq, 2u);                // but recency advanced
  EXPECT_EQ(history.last_seq(), 2u);
}

TEST(WorkloadHistoryTest, SaveAndLoadRoundTrip) {
  const std::string path = TempPath(".history");
  WorkloadHistory history;
  history.Observe(Event(1, "t one", {0, 1}, {1}));
  history.Observe(Event(2, "t one", {0}));
  history.Observe(Event(3, "u", {7}));
  ASSERT_TRUE(history.SaveToFile(path).ok());

  WorkloadHistory loaded;
  WorkloadHistory::LoadStats stats;
  ASSERT_TRUE(loaded.LoadFromFile(path, &stats).ok());
  EXPECT_EQ(stats.version, 1);
  EXPECT_EQ(stats.tables, 2u);
  EXPECT_EQ(stats.columns, 3u);
  EXPECT_FALSE(stats.torn_tail_dropped);
  EXPECT_EQ(loaded.last_seq(), 3u);
  TableUsage t = loaded.TableSnapshot("t one");  // escaped name round-trips
  EXPECT_EQ(t.queries, 2u);
  EXPECT_EQ(t.columns.at(0).touches, 2u);
  EXPECT_EQ(t.columns.at(1).predicates, 1u);
  EXPECT_EQ(loaded.TableSnapshot("u").columns.at(7).touches, 1u);
}

TEST(WorkloadHistoryTest, LoadDropsTornTrailingLine) {
  const std::string path = TempPath(".history");
  WorkloadHistory history;
  history.Observe(Event(1, "t", {0}));
  ASSERT_TRUE(history.SaveToFile(path).ok());
  {
    auto file = WritableFile::OpenForAppend(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("col t 9 touc").ok());  // no newline: torn
    const Status st = (*file)->Close();
    static_cast<void>(st);
  }
  WorkloadHistory loaded;
  WorkloadHistory::LoadStats stats;
  ASSERT_TRUE(loaded.LoadFromFile(path, &stats).ok());
  EXPECT_TRUE(stats.torn_tail_dropped);
  EXPECT_EQ(loaded.TableSnapshot("t").columns.count(9), 0u);
}

TEST(WorkloadHistoryTest, ReplayLogFoldsOnlyEventsAboveHighWater) {
  const std::string log_path = TempPath(".jsonl");
  ASSERT_TRUE(RemoveFileIfExists(log_path).ok());
  ASSERT_TRUE(RemoveFileIfExists(log_path + ".1").ok());
  {
    auto log = QueryLog::Open(log_path);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*log)->Append(Event(0, "t", {0, 1})).ok());
    }
  }
  WorkloadHistory history;
  auto folded = history.ReplayLog(log_path);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, 3u);
  EXPECT_EQ(history.TableSnapshot("t").queries, 3u);

  // A second replay folds nothing: everything is at or below last_seq.
  folded = history.ReplayLog(log_path);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, 0u);
  EXPECT_EQ(history.TableSnapshot("t").queries, 3u);
}

TEST(WorkloadHistoryTest, ReconcileDropsTablesMissingFromCatalog) {
  WorkloadHistory history;
  history.Observe(Event(1, "kept", {0}));
  history.Observe(Event(2, "dropped", {0}));
  history.Observe(Event(3, "also_dropped", {0}));

  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("kept", "kept.csv", Schema::AllUint32(1), 100).ok());

  EXPECT_EQ(ReconcileHistoryWithCatalog(history, catalog), 2u);
  EXPECT_EQ(history.Tables(), std::vector<std::string>{"kept"});
  // Aggregates for surviving tables are untouched.
  EXPECT_EQ(history.TableSnapshot("kept").queries, 1u);
}

TEST(LoadAdvisorTest, RanksByFrequencyWithPredicateAndRecencyTieBreaks) {
  WorkloadHistory history;
  // col0 in all 4 queries; col1 in 2 (one as predicate); col2 in 2 (later);
  // col3 in 1.
  history.Observe(Event(1, "t", {0, 1, 3}, {1}));
  history.Observe(Event(2, "t", {0, 1}));
  history.Observe(Event(3, "t", {0, 2}));
  history.Observe(Event(4, "t", {0, 2}));

  LoadAdvisor advisor(&history, /*hot_threshold=*/0.5);
  AdvisorPlan plan = advisor.Plan("t");
  ASSERT_TRUE(plan.has_history);
  ASSERT_EQ(plan.ranked.size(), 4u);
  EXPECT_EQ(plan.ranked[0].column, 0u);  // freq 1.0 dominates
  // col1 and col2 both have freq 0.5; col2's recency edge (last_seq 4 vs 2,
  // worth 0.1) outweighs col1's predicate bonus (0.3 * 1/4 = 0.075).
  EXPECT_EQ(plan.ranked[1].column, 2u);
  EXPECT_EQ(plan.ranked[2].column, 1u);
  EXPECT_EQ(plan.ranked[3].column, 3u);
  EXPECT_EQ(plan.hot, (std::vector<size_t>{0, 2, 1}));
  EXPECT_NE(plan.note.find("3/4 columns hot"), std::string::npos);
}

TEST(LoadAdvisorTest, FilterColumnsKeepsHotInRankOrder) {
  WorkloadHistory history;
  history.Observe(Event(1, "t", {0, 1}));
  history.Observe(Event(2, "t", {1}));
  LoadAdvisor advisor(&history, 0.5);
  // col1 freq 1.0, col0 freq 0.5 — both hot, col1 first.
  EXPECT_EQ(advisor.FilterColumns("t", {0, 1, 2, 3}),
            (std::vector<size_t>{1, 0}));
}

TEST(LoadAdvisorTest, FallsBackToAvailableWhenHistoryIsSilent) {
  WorkloadHistory history;
  LoadAdvisor advisor(&history, 0.5);
  const std::vector<size_t> available = {2, 0, 1};
  // No history at all: pass-through, order preserved.
  EXPECT_EQ(advisor.FilterColumns("t", available), available);

  // History exists but no hot column intersects `available`: still
  // pass-through — the advisor never makes speculative loading load less
  // than something.
  history.Observe(Event(1, "t", {9}));
  EXPECT_EQ(advisor.FilterColumns("t", available), available);

  LoadAdvisor detached(nullptr);
  EXPECT_EQ(detached.FilterColumns("t", available), available);
  EXPECT_NE(detached.Plan("t").note.find("no history"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replay acceptance: run a fixed query mix with logging on, restart with the
// persisted history feeding an advisor, and verify the speculative column
// load order changed, results stayed byte-identical, and the write budget
// went to the hot columns.
// ---------------------------------------------------------------------------

class WorkloadReplayTest : public testing::Test {
 protected:
  static constexpr uint64_t kRows = 3000;
  static constexpr size_t kCols = 4;

  void SetUp() override {
    csv_path_ = TempPath(".csv");
    spec_.num_rows = kRows;
    spec_.num_columns = kCols;
    spec_.seed = 42;
    auto info = GenerateCsvFile(csv_path_, spec_);
    ASSERT_TRUE(info.ok());
    info_ = *info;
  }

  static QuerySpec FullQuery() {
    QuerySpec q;
    q.sum_columns = {0, 1, 2, 3};
    return q;
  }

  static QuerySpec HotQuery() {
    QuerySpec q;
    q.sum_columns = {0, 1};
    return q;
  }

  static ScanRawOptions BaseOptions() {
    ScanRawOptions options;
    options.num_workers = 2;
    options.chunk_rows = 500;  // 6 chunks
    return options;
  }

  std::string csv_path_;
  CsvSpec spec_;
  CsvFileInfo info_;
};

TEST_F(WorkloadReplayTest, PersistedHistoryChangesLoadOrderNotResults) {
  const std::string log_path = TempPath(".jsonl");
  const std::string history_path = TempPath(".history");
  // Leftovers from a previous run would pollute the logged mix.
  ASSERT_TRUE(RemoveFileIfExists(log_path).ok());
  ASSERT_TRUE(RemoveFileIfExists(log_path + ".1").ok());
  ASSERT_TRUE(RemoveFileIfExists(history_path).ok());

  // --- Run 1: external tables (no loading), query log on. The mix makes
  // columns 0 and 1 hot (freq 1.0) and columns 2 and 3 cold (freq 0.25).
  {
    ScanRawManager::Config config;
    config.db_path = TempPath("_run1.db");
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());

    auto log = QueryLog::Open(log_path);
    ASSERT_TRUE(log.ok());
    ScanRawOptions options = BaseOptions();
    options.policy = LoadPolicy::kExternalTables;
    options.query_log = log->get();
    ASSERT_TRUE((*manager)
                    ->RegisterRawFile("t", csv_path_, CsvSchema(spec_), options)
                    .ok());

    auto full = (*manager)->Query("t", FullQuery());
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full->total_sum, info_.total_sum);
    for (int i = 0; i < 3; ++i) {
      auto hot = (*manager)->Query("t", HotQuery());
      ASSERT_TRUE(hot.ok());
      EXPECT_EQ(hot->total_sum, info_.column_sums[0] + info_.column_sums[1]);
    }
    EXPECT_EQ((*log)->events_appended(), 4u);

    // Fold the log into a history and persist it, as the CLI does at exit.
    WorkloadHistory history;
    auto folded = history.ReplayLog(log_path);
    ASSERT_TRUE(folded.ok());
    EXPECT_EQ(*folded, 4u);
    ASSERT_TRUE(history.SaveToFile(history_path).ok());
  }

  // --- Baseline for comparison: speculative loading WITHOUT the advisor
  // loads every column of every chunk.
  uint64_t plain_bytes_written = 0;
  {
    ScanRawManager::Config config;
    config.db_path = TempPath("_plain.db");
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ScanRawOptions options = BaseOptions();
    options.policy = LoadPolicy::kSpeculativeLoading;
    ASSERT_TRUE((*manager)
                    ->RegisterRawFile("t", csv_path_, CsvSchema(spec_), options)
                    .ok());
    obs::ExplainReport report;
    auto full = (*manager)->Query("t", FullQuery(), &report);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full->total_sum, info_.total_sum);
    EXPECT_FALSE(report.advisor_used);
    ASSERT_GT(report.chunks_written, 0u);
    plain_bytes_written = report.bytes_written;
    ASSERT_GT(plain_bytes_written, 0u);

    auto meta = (*manager)->catalog()->GetTable("t");
    ASSERT_TRUE(meta.ok());
    for (const auto& chunk : meta->chunks) {
      if (!chunk.loaded_columns.empty()) {
        EXPECT_EQ(chunk.loaded_columns.size(), kCols);
      }
    }
  }

  // --- Run 2: "restarted process" — fresh history loaded from disk,
  // reconciled by replaying the log (which folds nothing new), feeding an
  // advisor under speculative loading.
  WorkloadHistory history;
  WorkloadHistory::LoadStats load_stats;
  ASSERT_TRUE(history.LoadFromFile(history_path, &load_stats).ok());
  EXPECT_EQ(load_stats.tables, 1u);
  auto folded = history.ReplayLog(log_path);
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(*folded, 0u);  // the persisted history was already current

  auto advisor = std::make_shared<LoadAdvisor>(&history, 0.5);
  EXPECT_EQ(advisor->FilterColumns("t", {0, 1, 2, 3}),
            (std::vector<size_t>{0, 1}));

  ScanRawManager::Config config;
  config.db_path = TempPath("_advised.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options = BaseOptions();
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.advisor = advisor;
  ASSERT_TRUE((*manager)
                  ->RegisterRawFile("t", csv_path_, CsvSchema(spec_), options)
                  .ok());

  obs::ExplainReport report;
  auto full = (*manager)->Query("t", FullQuery(), &report);
  ASSERT_TRUE(full.ok());
  // Byte-identical results: the advisor changed what gets WRITTEN, never
  // what gets delivered.
  EXPECT_EQ(full->total_sum, info_.total_sum);
  EXPECT_EQ(full->rows_scanned, kRows);
  EXPECT_TRUE(report.advisor_used);
  EXPECT_NE(report.advisor_note.find("2/4 columns hot"), std::string::npos);
  ASSERT_GT(report.chunks_written, 0u);
  ASSERT_GT(report.bytes_written, 0u);
  // The write budget shrank: only the hot half of each chunk was stored.
  EXPECT_LT(report.bytes_written, plain_bytes_written);

  // The catalog shows the changed load order: loaded chunks carry exactly
  // the advisor's hot set, not all four columns.
  auto meta = (*manager)->catalog()->GetTable("t");
  ASSERT_TRUE(meta.ok());
  size_t loaded_chunks = 0;
  for (const auto& chunk : meta->chunks) {
    if (chunk.loaded_columns.empty()) continue;
    ++loaded_chunks;
    EXPECT_EQ(chunk.loaded_columns, (std::set<size_t>{0, 1}));
  }
  ASSERT_GT(loaded_chunks, 0u);

  // The stored hot columns pay off: a hot-set query is served without
  // touching the raw file, and results still match ground truth.
  obs::ExplainReport hot_report;
  auto hot = (*manager)->Query("t", HotQuery(), &hot_report);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->total_sum, info_.column_sums[0] + info_.column_sums[1]);
  EXPECT_EQ(hot_report.chunks_from_raw, 0u);
  EXPECT_EQ(hot_report.chunks_from_cache + hot_report.chunks_from_db,
            loaded_chunks);

  // A cold-column query still works — those columns come from the raw side.
  QuerySpec cold;
  cold.sum_columns = {2, 3};
  auto cold_result = (*manager)->Query("t", cold);
  ASSERT_TRUE(cold_result.ok());
  EXPECT_EQ(cold_result->total_sum,
            info_.column_sums[2] + info_.column_sums[3]);
}

}  // namespace
}  // namespace scanraw
