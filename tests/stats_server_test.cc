#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/csv_generator.h"
#include "obs/log.h"
#include "obs/stats_server.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace obs {
namespace {

std::string TestPath(const std::string& suffix) {
  std::string name = testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  return testing::TempDir() + "/stats_" + name + "_" + suffix;
}

// Minimal blocking HTTP client: sends `request` verbatim to 127.0.0.1:port
// and returns everything the server wrote back.
std::string RawHttp(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd, request.data() + sent,
                              request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawHttp(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(PrometheusNameTest, SanitizesToLegalNames) {
  EXPECT_EQ(PrometheusName("scanraw.cache.hits"), "scanraw_cache_hits");
  EXPECT_EQ(PrometheusName("already_fine:name"), "already_fine:name");
  EXPECT_EQ(PrometheusName("weird-chars !"), "weird_chars__");
  EXPECT_EQ(PrometheusName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(StatsServerTest, StartRequiresTelemetry) {
  StatsServerOptions options;
  StatsServer server(options);
  Status s = server.Start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatsServerTest, PortInUseFailsWithIoError) {
  Telemetry telemetry;
  StatsServerOptions options;
  options.telemetry = &telemetry;
  StatsServer first(options);
  ASSERT_TRUE(first.Start().ok());
  ASSERT_GT(first.port(), 0);

  StatsServerOptions taken = options;
  taken.port = first.port();
  StatsServer second(taken);
  Status s = second.Start();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIoError());
  // The error names the port so the operator can find the squatter.
  EXPECT_NE(s.ToString().find(std::to_string(first.port())),
            std::string::npos)
      << s.ToString();
}

TEST(StatsServerTest, RenderMetricsIsPrometheusExposition) {
  Telemetry telemetry;
  telemetry.metrics().GetCounter("scanraw.rows_delivered")->Add(1234);
  telemetry.metrics().GetGauge("pool.queue_depth")->Set(3);
  telemetry.metrics().GetHistogram("stage.read_nanos")->Record(5000);
  telemetry.timeseries().TrackPipelineDefaults(&telemetry.metrics());
  telemetry.timeseries().SampleNow(0);
  telemetry.metrics().GetCounter("scanraw.rows_delivered")->Add(1000);
  telemetry.timeseries().SampleNow(2'000'000'000);
  // Freeze the rings: the scrape below must not take a real-clock sample on
  // top of the two synthetic points the rate assertion depends on.
  telemetry.timeseries().set_interval_nanos(0);

  StatsServerOptions options;
  options.telemetry = &telemetry;
  StatsServer server(options);
  const std::string body = server.RenderMetrics();

  EXPECT_NE(body.find("# TYPE scanraw_rows_delivered counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("scanraw_rows_delivered 2234\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE pool_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(body.find("stage_read_nanos{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(body.find("stage_read_nanos_count 1\n"), std::string::npos);
  // Ring-derived rate gauges: 500 rows/s over the 2 s sample gap.
  EXPECT_NE(body.find("# TYPE scanraw_rows_delivered_per_sec gauge\n"),
            std::string::npos);
  EXPECT_NE(body.find("scanraw_rows_delivered_per_sec 500\n"),
            std::string::npos)
      << body;
  // Heartbeat liveness is always exported.
  EXPECT_NE(body.find("scanraw_stage_active{stage=\"READ\"} 0\n"),
            std::string::npos);
  EXPECT_NE(body.find("scanraw_stage_beats_total{stage=\"PARSE\"} 0\n"),
            std::string::npos);
}

TEST(StatsServerTest, HealthzTracksWatchdogStalls) {
  Telemetry telemetry;
  VirtualClock clock;
  WatchdogOptions wd;
  wd.window_ms = 10;
  wd.clock = &clock;
  wd.flight_dump_path = TestPath("dump.txt");
  Watchdog dog(&telemetry.heartbeats(), wd);

  StatsServerOptions options;
  options.telemetry = &telemetry;
  options.watchdog = &dog;
  StatsServer server(options);

  bool healthy = false;
  EXPECT_EQ(server.RenderHealthz(&healthy), "ok\n");
  EXPECT_TRUE(healthy);

  Logger::Global()->SetStderrEnabled(false);
  telemetry.heartbeats().Enter(HeartbeatStage::kTokenize);
  dog.CheckNow();
  clock.AdvanceNanos(1'000'000);
  dog.CheckNow();
  clock.AdvanceNanos(20'000'000);
  dog.CheckNow();
  telemetry.heartbeats().Leave(HeartbeatStage::kTokenize);
  Logger::Global()->SetStderrEnabled(true);
  ASSERT_EQ(dog.stalls_detected(), 1u);

  const std::string body = server.RenderHealthz(&healthy);
  EXPECT_FALSE(healthy);
  EXPECT_NE(body.find("stalled"), std::string::npos);
  // /statusz and /metrics surface the same stall.
  EXPECT_NE(server.RenderStatusz().find("stalls=1"), std::string::npos);
  EXPECT_NE(server.RenderMetrics().find("scanraw_watchdog_stalls_total 1\n"),
            std::string::npos);
}

TEST(StatsServerTest, ServesHttpRoutesAndRejectsJunk) {
  Telemetry telemetry;
  telemetry.metrics().GetCounter("scanraw.rows_delivered")->Add(5);
  StatsServerOptions options;
  options.telemetry = &telemetry;
  options.build_info = "unit-test-build";
  options.statusz_section = [] { return std::string("extra: section\n"); };
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  ASSERT_GT(port, 0);

  const std::string metrics = Get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("scanraw_rows_delivered 5\n"), std::string::npos);

  const std::string statusz = Get(port, "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("build: unit-test-build"), std::string::npos);
  EXPECT_NE(statusz.find("extra: section"), std::string::npos);

  EXPECT_NE(Get(port, "/healthz").find("HTTP/1.0 200 OK"),
            std::string::npos);
  EXPECT_NE(Get(port, "/nope").find("HTTP/1.0 404 Not Found"),
            std::string::npos);
  EXPECT_NE(RawHttp(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .find("HTTP/1.0 405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(RawHttp(port, "garbage\r\n\r\n").find("HTTP/1.0 400 Bad Request"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 6u);
  server.Stop();
  server.Stop();  // idempotent
}

// Concurrent scrapes while a real scan runs: every response is a complete,
// well-formed exposition and the scan's result is unaffected.
TEST(StatsServerTest, ConcurrentScrapesDuringLiveScan) {
  const std::string csv_path = TestPath("data.csv");
  CsvSpec spec;
  spec.num_rows = 20000;
  spec.num_columns = 6;
  spec.seed = 11;
  auto info = GenerateCsvFile(csv_path, spec);
  ASSERT_TRUE(info.ok());

  ScanRawManager::Config config;
  config.db_path = csv_path + ".db";
  config.watchdog_ms = 30000;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions scan_options;
  scan_options.policy = LoadPolicy::kSpeculativeLoading;
  scan_options.num_workers = 2;
  scan_options.chunk_rows = 1000;
  scan_options.timeseries_interval_ms = 1;
  ASSERT_TRUE((*manager)
                  ->RegisterRawFile("t", csv_path, CsvSchema(spec),
                                    scan_options)
                  .ok());

  StatsServerOptions options;
  options.telemetry = (*manager)->telemetry();
  options.watchdog = (*manager)->watchdog();
  ScanRawManager* mgr = manager->get();
  options.statusz_section = [mgr] { return mgr->Statusz(); };
  StatsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const std::string body = Get(port, "/metrics");
        EXPECT_NE(body.find("HTTP/1.0 200 OK"), std::string::npos);
        EXPECT_NE(body.find("scanraw_stage_beats_total"), std::string::npos);
        const std::string statusz = Get(port, "/statusz");
        EXPECT_NE(statusz.find("table t:"), std::string::npos);
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  QuerySpec query;
  for (size_t c = 0; c < spec.num_columns; ++c) query.sum_columns.push_back(c);
  uint64_t expected = info->total_sum;
  for (int q = 0; q < 3; ++q) {
    auto result = (*manager)->Query("t", query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, expected);
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& th : scrapers) th.join();
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ((*manager)->watchdog()->stalls_detected(), 0u);

  // After the scan, the pipeline rates made it into the exposition.
  const std::string body = server.RenderMetrics();
  EXPECT_NE(body.find("scanraw_rows_delivered_per_sec"), std::string::npos);
  EXPECT_NE(body.find("scanraw_rows_delivered "), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
