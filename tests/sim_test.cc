#include <gtest/gtest.h>

#include <numeric>

#include "sim/calibrate.h"
#include "sim/pipeline_sim.h"

namespace scanraw {
namespace {

SimConfig BaseConfig(LoadPolicy policy, size_t workers) {
  SimConfig config;
  config.num_chunks = 64;
  config.workers = workers;
  config.policy = policy;
  CostModelInput input;
  config.costs = PaperChunkCosts(input);
  return config;
}

size_t LoadedCount(const SimResult& r) {
  return std::accumulate(r.loaded_after.begin(), r.loaded_after.end(),
                         size_t{0});
}

TEST(CalibrateTest, PaperCostsScaleWithColumns) {
  CostModelInput narrow, wide;
  narrow.num_columns = 2;
  wide.num_columns = 256;
  ChunkCosts a = PaperChunkCosts(narrow);
  ChunkCosts b = PaperChunkCosts(wide);
  // 128x the cells, plus the cache-pressure growth in per-cell cost.
  EXPECT_GT(b.parse_s / a.parse_s, 128.0);
  EXPECT_LT(b.parse_s / a.parse_s, 300.0);
  EXPECT_GT(b.tokenize_s, a.tokenize_s);
  EXPECT_GT(b.read_s, a.read_s);
  // At 64 columns the testbed is CPU-bound: conversion >> read.
  CostModelInput mid;
  ChunkCosts c = PaperChunkCosts(mid);
  EXPECT_GT(c.tokenize_s + c.parse_s, 3 * c.read_s);
}

TEST(CalibrateTest, HostCalibrationProducesPositiveCosts) {
  CostModelInput input;
  input.num_columns = 8;
  input.rows_per_chunk = 1 << 16;
  auto costs = CalibrateChunkCosts(input, 2048);
  ASSERT_TRUE(costs.ok()) << costs.status().ToString();
  EXPECT_GT(costs->tokenize_s, 0.0);
  EXPECT_GT(costs->parse_s, 0.0);
  EXPECT_GT(costs->read_s, 0.0);
  EXPECT_GT(costs->write_s, 0.0);
  EXPECT_TRUE(CalibrateChunkCosts(input, 0).status().IsInvalidArgument());
}

TEST(SimTest, MoreWorkersNeverSlower) {
  double last = 1e18;
  for (size_t w : {1, 2, 4, 8, 16}) {
    SimResult r = SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, w));
    EXPECT_LE(r.exec_seconds, last * 1.001) << w << " workers";
    last = r.exec_seconds;
  }
}

TEST(SimTest, ExecTimeLevelsOffWhenIoBound) {
  // Figure 4a: beyond the crossover, more workers do not help because the
  // disk is the bottleneck.
  SimResult w8 = SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 8));
  SimResult w16 =
      SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 16));
  EXPECT_NEAR(w8.exec_seconds, w16.exec_seconds, 0.05 * w8.exec_seconds);
  // And the I/O-bound floor is the total read time.
  SimConfig config = BaseConfig(LoadPolicy::kExternalTables, 16);
  const double read_total =
      config.costs.read_s * static_cast<double>(config.num_chunks);
  EXPECT_GE(w16.exec_seconds, read_total * 0.99);
  EXPECT_LE(w16.exec_seconds, read_total * 1.3);
}

TEST(SimTest, SequentialSlowerThanOneWorker) {
  SimResult seq = SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 0));
  SimResult one = SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 1));
  EXPECT_GT(seq.exec_seconds, one.exec_seconds);
}

TEST(SimTest, SpeculativeMatchesExternalTablesWithWorkers) {
  // Figure 4a: the speculative and external-tables curves overlap for >= 1
  // worker — loading runs only on otherwise-idle disk time.
  for (size_t w : {1, 2, 4, 8, 16}) {
    SimResult ext =
        SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, w));
    SimResult spec =
        SimulatePipeline(BaseConfig(LoadPolicy::kSpeculativeLoading, w));
    EXPECT_NEAR(spec.exec_seconds, ext.exec_seconds,
                0.05 * ext.exec_seconds)
        << w << " workers";
  }
}

TEST(SimTest, SpeculativeLoadsAlmostAllWhenCpuBound) {
  // Figure 4b: CPU-bound (few workers) -> nearly full loading.
  SimResult r =
      SimulatePipeline(BaseConfig(LoadPolicy::kSpeculativeLoading, 2));
  EXPECT_GT(static_cast<double>(r.chunks_written_at_exec), 0.8 * 64);
}

TEST(SimTest, SpeculativeLoadsLittleWhenIoBound) {
  // Figure 4b: I/O-bound (many workers) -> READ never blocks -> (almost) no
  // speculative loading during execution.
  SimConfig config = BaseConfig(LoadPolicy::kSpeculativeLoading, 16);
  config.safeguard = false;  // isolate the during-execution behavior
  SimResult r = SimulatePipeline(config);
  EXPECT_LT(static_cast<double>(r.chunks_written_at_exec), 0.1 * 64);
}

TEST(SimTest, FullLoadSlowerWhenIoBound) {
  // Figure 4a: load & process costs extra only once the disk is the
  // bottleneck; with few workers loading comes for free.
  SimResult ext2 =
      SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 2));
  SimResult full2 = SimulatePipeline(BaseConfig(LoadPolicy::kFullLoad, 2));
  EXPECT_NEAR(full2.exec_seconds, ext2.exec_seconds,
              0.05 * ext2.exec_seconds);
  SimResult ext16 =
      SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 16));
  SimResult full16 = SimulatePipeline(BaseConfig(LoadPolicy::kFullLoad, 16));
  EXPECT_GT(full16.exec_seconds, 1.2 * ext16.exec_seconds);
}

TEST(SimTest, FullLoadLoadsEverything) {
  SimResult r = SimulatePipeline(BaseConfig(LoadPolicy::kFullLoad, 8));
  EXPECT_EQ(LoadedCount(r), 64u);
  EXPECT_EQ(r.chunks_written_total, 64u);
}

TEST(SimTest, InvisibleLoadsFixedCount) {
  SimConfig config = BaseConfig(LoadPolicy::kInvisibleLoading, 8);
  config.invisible_chunks_per_query = 5;
  SimResult r = SimulatePipeline(config);
  EXPECT_EQ(r.chunks_written_total, 5u);
}

TEST(SimTest, SafeguardGuaranteesProgressWhenIoBound) {
  SimConfig config = BaseConfig(LoadPolicy::kSpeculativeLoading, 16);
  config.safeguard = true;
  SimResult r = SimulatePipeline(config);
  // Trailing writes load (at least) the cache-resident tail.
  EXPECT_GE(r.chunks_written_total, std::min<size_t>(config.cache_chunks, 64));
  EXPECT_GE(r.writes_drained_seconds, r.exec_seconds);
}

TEST(SimTest, QuerySequenceConvergesToDatabase) {
  // Figure 8: speculative loading converges to database performance; each
  // query is no slower than its predecessor (modulo noise-free sim).
  SimConfig config = BaseConfig(LoadPolicy::kSpeculativeLoading, 16);
  auto results = SimulateQuerySequence(config, 8);
  for (size_t q = 1; q < results.size(); ++q) {
    EXPECT_LE(results[q].exec_seconds, results[q - 1].exec_seconds * 1.001)
        << "query " << q;
  }
  // Eventually everything is loaded and queries run from cache+database.
  EXPECT_EQ(LoadedCount(results.back()), 64u);
  EXPECT_EQ(results.back().chunks_from_raw, 0u);
  // Database processing (binary) beats external tables (text) because the
  // binary representation is smaller.
  SimResult ext =
      SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 16));
  EXPECT_LT(results.back().exec_seconds, ext.exec_seconds);
}

TEST(SimTest, ExternalTablesSequenceNeverImproves) {
  SimConfig config = BaseConfig(LoadPolicy::kExternalTables, 16);
  config.cache_chunks = 8;  // cache much smaller than the 64 chunks
  auto results = SimulateQuerySequence(config, 3);
  // With a small cache the bulk of every query re-reads the raw file.
  EXPECT_GT(results[2].exec_seconds, 0.8 * results[0].exec_seconds);
  EXPECT_EQ(LoadedCount(results[2]), 0u);
}

TEST(SimTest, TraceCoversExecutionAndAlternatesDisk) {
  SimConfig config = BaseConfig(LoadPolicy::kSpeculativeLoading, 4);
  config.record_trace = true;
  SimResult r = SimulatePipeline(config);
  ASSERT_FALSE(r.trace.empty());
  bool saw_read = false, saw_write = false;
  double covered = 0;
  for (const auto& s : r.trace) {
    EXPECT_LE(s.t0, s.t1);
    if (s.disk == 1) saw_read = true;
    if (s.disk == 2) saw_write = true;
    covered += s.t1 - s.t0;
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);  // CPU-bound at 4 workers -> speculative writes
  EXPECT_NEAR(covered, r.writes_drained_seconds,
              0.01 * r.writes_drained_seconds);
}

TEST(SimTest, DispatchOverheadPenalizesTinyChunks) {
  // Figure 7: same total work split into many tiny chunks is slower when
  // conversion is the bottleneck (2 workers), because every chunk pays the
  // dynamic task-allocation overhead.
  CostModelInput input;
  input.rows_per_chunk = 1 << 14;
  SimConfig tiny = BaseConfig(LoadPolicy::kExternalTables, 2);
  tiny.num_chunks = 64 * 32;
  tiny.costs = PaperChunkCosts(input);
  SimResult r_tiny = SimulatePipeline(tiny);
  SimResult r_big =
      SimulatePipeline(BaseConfig(LoadPolicy::kExternalTables, 2));
  EXPECT_GT(r_tiny.exec_seconds, 1.2 * r_big.exec_seconds);
}

TEST(SimTest, WorkConservation) {
  // The pipeline cannot finish faster than its critical resource: max of
  // total disk read time and total conversion time / workers.
  for (size_t w : {1, 2, 4, 8, 16}) {
    SimConfig config = BaseConfig(LoadPolicy::kExternalTables, w);
    SimResult r = SimulatePipeline(config);
    const double n = static_cast<double>(config.num_chunks);
    const double io_floor = n * config.costs.read_s;
    const double cpu_floor =
        n * (config.costs.tokenize_s + config.costs.parse_s) /
        static_cast<double>(w);
    EXPECT_GE(r.exec_seconds * 1.0001, std::max(io_floor, cpu_floor))
        << w << " workers";
  }
}

TEST(SimTest, WriteFailuresLeaveChunksUnloaded) {
  SimConfig config = BaseConfig(LoadPolicy::kFullLoad, 8);
  config.write_failure_rate = 1.0;
  SimResult r = SimulatePipeline(config);
  EXPECT_EQ(r.writes_failed, 64u);
  EXPECT_EQ(LoadedCount(r), 0u);
  EXPECT_EQ(r.chunks_written_total, 0u);
  // The query itself still completes: chunks are served from the raw side.
  EXPECT_GT(r.exec_seconds, 0.0);

  // Sequential mode degrades the same way.
  config.workers = 0;
  SimResult seq = SimulatePipeline(config);
  EXPECT_EQ(seq.writes_failed, 64u);
  EXPECT_EQ(LoadedCount(seq), 0u);
}

TEST(SimTest, WriteFailuresDeterministicForSeed) {
  SimConfig config = BaseConfig(LoadPolicy::kFullLoad, 8);
  config.write_failure_rate = 0.3;
  config.failure_seed = 123;
  SimResult a = SimulatePipeline(config);
  SimResult b = SimulatePipeline(config);
  EXPECT_GT(a.writes_failed, 0u);
  EXPECT_LT(a.writes_failed, 64u);
  EXPECT_EQ(a.writes_failed, b.writes_failed);
  EXPECT_EQ(a.loaded_after, b.loaded_after);
  EXPECT_EQ(LoadedCount(a) + a.writes_failed, 64u);
}

TEST(SimTest, SequenceRetriesFailedWritesAcrossQueries) {
  // A failure leaves the chunk unloaded; later queries in a sequence try
  // again (mirroring the real operator's backoff-and-retry), so loading
  // still converges when the fault is transient.
  SimConfig config = BaseConfig(LoadPolicy::kSpeculativeLoading, 16);
  config.write_failure_rate = 0.5;
  config.failure_seed = 7;
  auto results = SimulateQuerySequence(config, 12);
  size_t total_failures = 0;
  for (const auto& r : results) total_failures += r.writes_failed;
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(LoadedCount(results.back()),
            LoadedCount(results.front()));
}

TEST(SimTest, CachedChunksSkipConversionNextQuery) {
  SimConfig config = BaseConfig(LoadPolicy::kExternalTables, 16);
  config.cache_chunks = 64;  // whole file fits
  auto results = SimulateQuerySequence(config, 2);
  EXPECT_EQ(results[1].chunks_from_cache, 64u);
  EXPECT_EQ(results[1].chunks_from_raw, 0u);
  EXPECT_LT(results[1].exec_seconds, 0.2 * results[0].exec_seconds);
}

}  // namespace
}  // namespace scanraw
