// Equivalence tests for the hot path's three tiers: the scalar reference
// (bench/reference_scalar.h, frozen), the sequential SIMD tokenizer, and the
// speculative parallel tokenizer (format/parallel_chunker) must produce
// byte-identical PositionalMaps — and the column-at-a-time parser identical
// BinaryChunks — over randomized schemas, delimiters, and edge-case
// layouts: CRLF line endings, empty fields, unterminated last lines,
// projections, selective tokenizing, push-down filters (including filters
// that drop every row), and RFC-4180 quoted fields with range boundaries
// forced into adversarial spots.

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bench/reference_scalar.h"
#include "common/random.h"
#include "format/parallel_chunker.h"
#include "format/parser.h"
#include "format/schema.h"
#include "format/text_chunk.h"
#include "format/tokenizer.h"
#include "pipeline/thread_pool.h"
#include "scanraw/chunk_buffer_pool.h"

namespace scanraw {
namespace {

void ExpectMapsEqual(const PositionalMap& got, const PositionalMap& want,
                     const std::string& context) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << context;
  ASSERT_EQ(got.fields_per_row(), want.fields_per_row()) << context;
  for (size_t r = 0; r < want.num_rows(); ++r) {
    for (size_t f = 0; f < want.fields_per_row(); ++f) {
      ASSERT_EQ(got.FieldStart(r, f), want.FieldStart(r, f))
          << context << " row " << r << " field " << f;
      ASSERT_EQ(got.FieldEnd(r, f), want.FieldEnd(r, f))
          << context << " row " << r << " field " << f;
    }
  }
}

void ExpectChunksEqual(const BinaryChunk& got, const BinaryChunk& want,
                       const std::string& context) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << context;
  ASSERT_EQ(got.ColumnIds(), want.ColumnIds()) << context;
  for (size_t id : want.ColumnIds()) {
    const ColumnVector& g = got.column(id);
    const ColumnVector& w = want.column(id);
    ASSERT_EQ(g.type(), w.type()) << context << " col " << id;
    ASSERT_EQ(g.size(), w.size()) << context << " col " << id;
    // Byte-identical backing arrays, not just equal logical values.
    ASSERT_EQ(g.fixed_data(), w.fixed_data()) << context << " col " << id;
    ASSERT_EQ(g.string_arena(), w.string_arena()) << context << " col " << id;
    ASSERT_EQ(g.string_offsets(), w.string_offsets())
        << context << " col " << id;
  }
}

FieldType RandomType(Random* rng) {
  switch (rng->Uniform(4)) {
    case 0: return FieldType::kUint32;
    case 1: return FieldType::kInt64;
    case 2: return FieldType::kDouble;
    default: return FieldType::kString;
  }
}

std::string RandomFieldText(Random* rng, FieldType type, char delimiter) {
  switch (type) {
    case FieldType::kUint32:
      return std::to_string(rng->NextUint32());
    case FieldType::kInt64: {
      const int64_t v = static_cast<int64_t>(rng->NextUint64());
      std::string s = std::to_string(v);
      if (v >= 0 && rng->OneIn(4)) s.insert(0, "+");
      return s;
    }
    case FieldType::kDouble:
      switch (rng->Uniform(4)) {
        case 0:
          return std::to_string(rng->NextDouble() * 1e6 - 5e5);
        case 1:
          return std::to_string(rng->NextUint32()) + "e" +
                 std::to_string(rng->Uniform(30));
        case 2:
          return "-" + std::to_string(rng->NextDouble());
        default:
          return std::to_string(rng->Uniform(1000));
      }
    case FieldType::kString: {
      const size_t len = rng->Uniform(12);  // often empty
      std::string s;
      for (size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(' ' + rng->Uniform(94));
        if (c == delimiter || c == '\n' || c == '\r') c = '_';
        s.push_back(c);
      }
      return s;
    }
  }
  return "";
}

struct RandomCsv {
  Schema schema;
  TextChunk chunk;
  size_t rows = 0;
};

RandomCsv MakeRandomCsv(Random* rng, uint64_t chunk_index) {
  static const char kDelims[] = {',', ';', '\t', '|'};
  const char delim = kDelims[rng->Uniform(4)];
  const size_t columns = 1 + rng->Uniform(12);
  const size_t rows = rng->Uniform(120);  // sometimes zero
  const bool crlf = rng->OneIn(3);
  const bool unterminated = rows > 0 && rng->OneIn(3);

  std::vector<ColumnDef> defs(columns);
  for (size_t c = 0; c < columns; ++c) {
    defs[c].name = "c" + std::to_string(c);
    defs[c].type = RandomType(rng);
  }
  RandomCsv out;
  out.schema = Schema(defs, delim);
  out.rows = rows;

  std::string data;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns; ++c) {
      if (c > 0) data.push_back(delim);
      data += RandomFieldText(rng, defs[c].type, delim);
    }
    if (r + 1 == rows && unterminated) break;
    data += crlf ? "\r\n" : "\n";
  }
  out.chunk = MakeTextChunk(std::move(data), chunk_index);
  return out;
}

TokenizeOptions TokOpts(const Schema& schema, size_t max_fields = 0) {
  TokenizeOptions opts;
  opts.delimiter = schema.delimiter();
  opts.schema_fields = schema.num_columns();
  opts.max_fields = max_fields;
  return opts;
}

TEST(HotpathEquivalenceTest, RandomizedTokenizeAndParse) {
  Random rng(20240817);
  ThreadPool pool(3);
  for (int iter = 0; iter < 60; ++iter) {
    RandomCsv csv = MakeRandomCsv(&rng, iter);
    const std::string context = "iter " + std::to_string(iter);
    const TokenizeOptions topts = TokOpts(csv.schema);

    auto ref_map = reference::RefTokenizeChunk(csv.chunk, topts);
    auto map = TokenizeChunk(csv.chunk, topts);
    ASSERT_TRUE(ref_map.ok()) << context << ": " << ref_map.status().ToString();
    ASSERT_TRUE(map.ok()) << context << ": " << map.status().ToString();
    ExpectMapsEqual(*map, *ref_map, context);

    // Third tier: the speculative parallel tokenizer, with range boundaries
    // forced even on tiny chunks, must match the frozen reference too.
    ParallelTokenizeOptions ptopts;
    ptopts.pool = &pool;
    ptopts.num_ranges = 1 + rng.Uniform(6);
    ptopts.min_range_bytes = 1;
    SpeculationStats stats;
    auto par_map = ParallelTokenizeChunk(csv.chunk, topts, ptopts, &stats);
    ASSERT_TRUE(par_map.ok()) << context << ": "
                              << par_map.status().ToString();
    ExpectMapsEqual(*par_map, *ref_map, context + " (parallel)");

    auto ref_parsed =
        reference::RefParseChunk(csv.chunk, *ref_map, csv.schema, {});
    auto parsed = ParseChunk(csv.chunk, *map, csv.schema, {});
    ASSERT_TRUE(ref_parsed.ok())
        << context << ": " << ref_parsed.status().ToString();
    ASSERT_TRUE(parsed.ok()) << context << ": " << parsed.status().ToString();
    ExpectChunksEqual(*parsed, *ref_parsed, context);
  }
}

TEST(HotpathEquivalenceTest, RandomizedProjectionsAndSelectiveTokenize) {
  Random rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    RandomCsv csv = MakeRandomCsv(&rng, iter);
    const std::string context = "iter " + std::to_string(iter);
    const size_t columns = csv.schema.num_columns();

    // Project a random prefix-closed subset and tokenize only up to the
    // last projected field (selective tokenizing).
    ParseOptions popts;
    const size_t keep = 1 + rng.Uniform(columns);
    for (size_t c = 0; c < keep; ++c) {
      if (rng.OneIn(2) || c + 1 == keep) popts.projected_columns.push_back(c);
    }
    const size_t max_fields = popts.projected_columns.back() + 1;
    const TokenizeOptions topts = TokOpts(csv.schema, max_fields);

    auto ref_map = reference::RefTokenizeChunk(csv.chunk, topts);
    auto map = TokenizeChunk(csv.chunk, topts);
    ASSERT_TRUE(ref_map.ok()) << context << ": " << ref_map.status().ToString();
    ASSERT_TRUE(map.ok()) << context << ": " << map.status().ToString();
    ExpectMapsEqual(*map, *ref_map, context);

    auto ref_parsed =
        reference::RefParseChunk(csv.chunk, *ref_map, csv.schema, popts);
    auto parsed = ParseChunk(csv.chunk, *map, csv.schema, popts);
    ASSERT_TRUE(ref_parsed.ok())
        << context << ": " << ref_parsed.status().ToString();
    ASSERT_TRUE(parsed.ok()) << context << ": " << parsed.status().ToString();
    ExpectChunksEqual(*parsed, *ref_parsed, context);
  }
}

TEST(HotpathEquivalenceTest, RandomizedPushdownFilters) {
  Random rng(4242);
  int exercised = 0;
  int filtered_all = 0;
  for (int iter = 0; iter < 80; ++iter) {
    RandomCsv csv = MakeRandomCsv(&rng, iter);
    // Find an integer column for the predicate. Doubles are excluded: the
    // generator produces values far outside int64 range, and the
    // double→int64 predicate cast would overflow (UB) in both paths.
    size_t pc = csv.schema.num_columns();
    for (size_t c = 0; c < csv.schema.num_columns(); ++c) {
      const FieldType t = csv.schema.column(c).type;
      if (t == FieldType::kUint32 || t == FieldType::kInt64) {
        pc = c;
        break;
      }
    }
    if (pc == csv.schema.num_columns()) continue;
    ++exercised;

    ParseOptions popts;
    popts.pushdown = PushdownFilter{};
    popts.pushdown->column = pc;
    switch (rng.Uniform(3)) {
      case 0:  // passes everything
        popts.pushdown->min_value = INT64_MIN;
        popts.pushdown->max_value = INT64_MAX;
        break;
      case 1:  // filters everything (empty range)
        popts.pushdown->min_value = 1;
        popts.pushdown->max_value = 0;
        ++filtered_all;
        break;
      default: {  // arbitrary band
        const int64_t a = static_cast<int64_t>(rng.NextUint64());
        const int64_t b = static_cast<int64_t>(rng.NextUint64());
        popts.pushdown->min_value = std::min(a, b);
        popts.pushdown->max_value = std::max(a, b);
        break;
      }
    }

    const std::string context = "iter " + std::to_string(iter);
    const TokenizeOptions topts = TokOpts(csv.schema);
    auto map = TokenizeChunk(csv.chunk, topts);
    ASSERT_TRUE(map.ok()) << context;

    auto ref_parsed =
        reference::RefParseChunk(csv.chunk, *map, csv.schema, popts);
    auto parsed = ParseChunk(csv.chunk, *map, csv.schema, popts);
    ASSERT_TRUE(ref_parsed.ok())
        << context << ": " << ref_parsed.status().ToString();
    ASSERT_TRUE(parsed.ok()) << context << ": " << parsed.status().ToString();
    ExpectChunksEqual(*parsed, *ref_parsed, context);
  }
  EXPECT_GT(exercised, 20);
  EXPECT_GT(filtered_all, 5);
}

TEST(HotpathEquivalenceTest, HandcraftedEdgeCases) {
  struct Case {
    const char* name;
    const char* data;
  };
  const Case cases[] = {
      {"empty fields", ",,\n,,\n"},
      {"crlf", "a,b,c\r\nd,e,f\r\n"},
      {"unterminated last line", "x,y,z\np,q,r"},
      {"single row single field", "hello"},
      {"trailing empty field", "a,b,\n"},
      {"empty chunk", ""},
  };
  std::vector<ColumnDef> defs(3);
  for (size_t c = 0; c < 3; ++c) {
    defs[c] = {"s" + std::to_string(c), FieldType::kString};
  }
  for (const Case& tc : cases) {
    const size_t columns = std::string_view(tc.data).empty() ? 3
                           : std::string(tc.data).find(',') == std::string::npos
                               ? 1
                               : 3;
    Schema schema(std::vector<ColumnDef>(defs.begin(), defs.begin() + columns));
    TextChunk chunk = MakeTextChunk(tc.data);
    const TokenizeOptions topts = TokOpts(schema);

    auto ref_map = reference::RefTokenizeChunk(chunk, topts);
    auto map = TokenizeChunk(chunk, topts);
    ASSERT_TRUE(ref_map.ok()) << tc.name;
    ASSERT_TRUE(map.ok()) << tc.name;
    ExpectMapsEqual(*map, *ref_map, tc.name);

    auto ref_parsed = reference::RefParseChunk(chunk, *ref_map, schema, {});
    auto parsed = ParseChunk(chunk, *map, schema, {});
    ASSERT_TRUE(ref_parsed.ok()) << tc.name;
    ASSERT_TRUE(parsed.ok()) << tc.name;
    ExpectChunksEqual(*parsed, *ref_parsed, tc.name);
  }
}

TEST(HotpathEquivalenceTest, TokenizeErrorsMatchReference) {
  std::vector<ColumnDef> defs(3);
  for (size_t c = 0; c < 3; ++c) defs[c] = {"c", FieldType::kString};
  const Schema schema(defs);
  const TokenizeOptions topts = TokOpts(schema);
  for (const char* data : {"a,b\n", "a,b,c,d\n", "ok,ok,ok\nshort\n"}) {
    TextChunk chunk = MakeTextChunk(data, 5);
    auto ref_map = reference::RefTokenizeChunk(chunk, topts);
    auto map = TokenizeChunk(chunk, topts);
    ASSERT_FALSE(ref_map.ok()) << data;
    ASSERT_FALSE(map.ok()) << data;
    EXPECT_EQ(map.status().ToString(), ref_map.status().ToString()) << data;
  }
}

TEST(HotpathEquivalenceTest, SingleParseErrorMatchesReference) {
  // One malformed field in the chunk: row-major (reference) and
  // column-major (vectorized) discovery must report the same location and
  // message. Multi-error chunks may legitimately report different (valid)
  // first errors, so only single-error inputs are compared.
  std::vector<ColumnDef> defs = {{"a", FieldType::kUint32},
                                 {"b", FieldType::kInt64},
                                 {"c", FieldType::kDouble}};
  const Schema schema(defs);
  const TokenizeOptions topts = TokOpts(schema);
  const char* cases[] = {
      "1,2,3.5\n4,oops,6.5\n7,8,9.5\n",   // bad int64 mid-chunk
      "bad,2,3.5\n",                      // bad uint32 first row
      "1,2,\n",                           // empty double
      "99999999999,2,3.5\n",              // uint32 overflow
  };
  for (const char* data : cases) {
    TextChunk chunk = MakeTextChunk(data, 11);
    auto map = TokenizeChunk(chunk, topts);
    ASSERT_TRUE(map.ok()) << data;
    auto ref_parsed = reference::RefParseChunk(chunk, *map, schema, {});
    auto parsed = ParseChunk(chunk, *map, schema, {});
    ASSERT_FALSE(ref_parsed.ok()) << data;
    ASSERT_FALSE(parsed.ok()) << data;
    EXPECT_EQ(parsed.status().ToString(), ref_parsed.status().ToString())
        << data;
  }
}

TEST(HotpathEquivalenceTest, QuotedParallelMatchesSequential) {
  // The scalar reference predates quoting, so the quoted dialect's two live
  // tiers (sequential FSM, speculative parallel) are compared against each
  // other — including quotes straddling the forced range boundaries.
  Random rng(31337);
  ThreadPool pool(3);
  const RecordDialect dialect{true, '"'};
  for (int iter = 0; iter < 40; ++iter) {
    const size_t columns = 1 + rng.Uniform(5);
    const size_t rows = 1 + rng.Uniform(60);
    std::string data;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < columns; ++c) {
        if (c > 0) data.push_back(',');
        data.push_back('"');
        const size_t len = rng.Uniform(8);
        for (size_t i = 0; i < len; ++i) {
          switch (rng.Uniform(5)) {
            case 0: data += "\"\""; break;
            case 1: data.push_back('\n'); break;
            case 2: data.push_back(','); break;
            default: data.push_back(static_cast<char>('a' + rng.Uniform(26)));
          }
        }
        data.push_back('"');
      }
      data.push_back('\n');
    }
    std::vector<uint32_t> newlines;
    FindRecordNewlines(data.data(), 0, data.size(), dialect, false, &newlines);
    std::vector<uint32_t> starts{0};
    for (uint32_t nl : newlines) {
      if (nl + 1 < data.size()) starts.push_back(nl + 1);
    }
    TextChunk chunk = MakeTextChunk(std::move(data), std::move(starts), iter);
    ASSERT_EQ(chunk.num_rows(), rows);

    std::vector<ColumnDef> defs(columns);
    for (size_t c = 0; c < columns; ++c) {
      defs[c] = {"s" + std::to_string(c), FieldType::kString};
    }
    const Schema schema(defs);
    TokenizeOptions topts = TokOpts(schema);
    topts.quoted = true;

    const std::string context = "iter " + std::to_string(iter);
    auto want = TokenizeChunk(chunk, topts);
    ASSERT_TRUE(want.ok()) << context << ": " << want.status().ToString();

    ParallelTokenizeOptions ptopts;
    ptopts.pool = &pool;
    ptopts.num_ranges = 2 + rng.Uniform(6);
    ptopts.min_range_bytes = 1;
    SpeculationStats stats;
    auto got = ParallelTokenizeChunk(chunk, topts, ptopts, &stats);
    ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
    ExpectMapsEqual(*got, *want, context);

    // And the parsed chunks (doubled quotes collapsed) stay identical.
    ParseOptions popts;
    popts.unescape_quotes = true;
    auto want_parsed = ParseChunk(chunk, *want, schema, popts);
    auto got_parsed = ParseChunk(chunk, *got, schema, popts);
    ASSERT_TRUE(want_parsed.ok()) << context;
    ASSERT_TRUE(got_parsed.ok()) << context;
    ExpectChunksEqual(*got_parsed, *want_parsed, context);
  }
}

TEST(HotpathEquivalenceTest, RecycledBuffersProduceIdenticalOutput) {
  Random rng(777);
  ChunkBufferPool pool;
  for (int iter = 0; iter < 20; ++iter) {
    RandomCsv csv = MakeRandomCsv(&rng, iter);
    const std::string context = "iter " + std::to_string(iter);
    const TokenizeOptions topts = TokOpts(csv.schema);
    auto map = TokenizeChunk(csv.chunk, topts);
    ASSERT_TRUE(map.ok()) << context;

    auto fresh = ParseChunk(csv.chunk, *map, csv.schema, {});
    ASSERT_TRUE(fresh.ok()) << context;

    ParseOptions recycled_opts;
    recycled_opts.recycler = &pool;
    auto recycled = ParseChunk(csv.chunk, *map, csv.schema, recycled_opts);
    ASSERT_TRUE(recycled.ok()) << context;
    ExpectChunksEqual(*recycled, *fresh, context);
    // Return the buffers so later iterations genuinely reuse them.
    recycled->ReleaseBuffersTo(&pool);
  }
}

}  // namespace
}  // namespace scanraw
