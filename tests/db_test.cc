#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <iterator>

#include "db/catalog.h"
#include "db/heap_scan.h"
#include "db/statistics.h"
#include "db/storage_manager.h"
#include "io/file.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

BinaryChunk MakeChunk(uint64_t index, std::vector<uint32_t> c0,
                      std::vector<uint32_t> c1) {
  BinaryChunk chunk(index);
  ColumnVector v0(FieldType::kUint32), v1(FieldType::kUint32);
  for (uint32_t v : c0) v0.AppendUint32(v);
  for (uint32_t v : c1) v1.AppendUint32(v);
  EXPECT_TRUE(chunk.AddColumn(0, std::move(v0)).ok());
  EXPECT_TRUE(chunk.AddColumn(1, std::move(v1)).ok());
  return chunk;
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  Schema schema = Schema::AllUint32(2);
  ASSERT_TRUE(catalog.CreateTable("t", "/raw/t.csv", schema, 1000).ok());
  EXPECT_TRUE(catalog.HasTable("t"));
  EXPECT_TRUE(catalog.CreateTable("t", "x", schema, 1).code() ==
              StatusCode::kAlreadyExists);
  auto meta = catalog.GetTable("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->raw_path, "/raw/t.csv");
  EXPECT_EQ(meta->target_chunk_rows, 1000u);
  EXPECT_FALSE(meta->layout_known);
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"t"});
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasTable("t"));
  EXPECT_TRUE(catalog.DropTable("t").IsNotFound());
  EXPECT_TRUE(catalog.GetTable("t").status().IsNotFound());
}

std::vector<ChunkMetadata> TwoChunkLayout() {
  std::vector<ChunkMetadata> chunks(2);
  chunks[0].chunk_index = 0;
  chunks[0].raw_offset = 0;
  chunks[0].raw_size = 100;
  chunks[0].num_rows = 3;
  chunks[1].chunk_index = 1;
  chunks[1].raw_offset = 100;
  chunks[1].raw_size = 80;
  chunks[1].num_rows = 2;
  return chunks;
}

TEST(CatalogTest, LayoutAndSegments) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("t", "raw", Schema::AllUint32(2), 10).ok());
  ASSERT_TRUE(catalog.SetChunkLayout("t", TwoChunkLayout()).ok());
  EXPECT_TRUE(catalog.SetChunkLayout("t", TwoChunkLayout()).code() ==
              StatusCode::kAlreadyExists);

  StoredSegment seg;
  seg.page = {0, 55};
  seg.columns = {0};
  std::map<size_t, ColumnStats> stats{{0, {5, 42}}};
  ASSERT_TRUE(catalog.RecordSegment("t", 0, seg, stats).ok());
  EXPECT_TRUE(catalog.RecordSegment("t", 9, seg, stats).code() ==
              StatusCode::kOutOfRange);

  auto meta = catalog.GetTable("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->layout_known);
  EXPECT_EQ(meta->chunks[0].loaded_columns.size(), 1u);
  EXPECT_EQ(meta->chunks[0].stats.at(0).min_value, 5);
  EXPECT_FALSE(meta->FullyLoaded());
  EXPECT_DOUBLE_EQ(meta->LoadedFraction(), 0.25);

  // Loading the rest flips FullyLoaded.
  StoredSegment rest;
  rest.page = {55, 60};
  rest.columns = {1};
  ASSERT_TRUE(catalog.RecordSegment("t", 0, rest, {}).ok());
  StoredSegment both;
  both.page = {115, 100};
  both.columns = {0, 1};
  ASSERT_TRUE(catalog.RecordSegment("t", 1, both, {}).ok());
  meta = catalog.GetTable("t");
  EXPECT_TRUE(meta->FullyLoaded());
  EXPECT_DOUBLE_EQ(meta->LoadedFraction(), 1.0);
}

TEST(CatalogTest, StatsMergeWidensRange) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", "raw", Schema::AllUint32(1), 10).ok());
  std::vector<ChunkMetadata> layout(1);
  layout[0].chunk_index = 0;
  ASSERT_TRUE(catalog.SetChunkLayout("t", std::move(layout)).ok());
  StoredSegment seg;
  seg.columns = {0};
  ASSERT_TRUE(catalog.RecordSegment("t", 0, seg, {{0, {10, 20}}}).ok());
  ASSERT_TRUE(catalog.RecordSegment("t", 0, seg, {{0, {5, 15}}}).ok());
  auto meta = catalog.GetTable("t");
  EXPECT_EQ(meta->chunks[0].stats.at(0).min_value, 5);
  EXPECT_EQ(meta->chunks[0].stats.at(0).max_value, 20);
}

TEST(CatalogTest, ChunkSkippingPredicate) {
  ChunkMetadata chunk;
  chunk.stats[0] = {100, 200};
  EXPECT_TRUE(chunk.CanSkipForRange(0, 0, 99));
  EXPECT_TRUE(chunk.CanSkipForRange(0, 201, 500));
  EXPECT_FALSE(chunk.CanSkipForRange(0, 150, 160));
  EXPECT_FALSE(chunk.CanSkipForRange(0, 0, 100));
  EXPECT_FALSE(chunk.CanSkipForRange(1, 0, 0));  // no stats -> cannot skip
}

TEST(CatalogTest, PersistenceRoundTrip) {
  const std::string path = TempPath("catalog.txt");
  Catalog catalog;
  Schema schema(std::vector<ColumnDef>{{"id", FieldType::kUint32},
                                       {"name", FieldType::kString}},
                '\t');
  ASSERT_TRUE(catalog.CreateTable("genes", "/data/genes.sam", schema, 512).ok());
  ASSERT_TRUE(catalog.SetChunkLayout("genes", TwoChunkLayout()).ok());
  StoredSegment seg;
  seg.page = {7, 99};
  seg.columns = {0, 1};
  ASSERT_TRUE(
      catalog.RecordSegment("genes", 1, seg, {{0, {-3, 88}}}).ok());
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  Catalog restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  auto meta = restored.GetTable("genes");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->raw_path, "/data/genes.sam");
  EXPECT_EQ(meta->schema.num_columns(), 2u);
  EXPECT_EQ(meta->schema.delimiter(), '\t');
  EXPECT_EQ(meta->schema.column(1).type, FieldType::kString);
  EXPECT_TRUE(meta->layout_known);
  ASSERT_EQ(meta->chunks.size(), 2u);
  EXPECT_EQ(meta->chunks[1].segments.size(), 1u);
  EXPECT_EQ(meta->chunks[1].segments[0].page.offset, 7u);
  EXPECT_EQ(meta->chunks[1].stats.at(0).min_value, -3);
  EXPECT_EQ(meta->chunks[1].loaded_columns.count(1), 1u);
  EXPECT_EQ(meta->chunks[0].num_rows, 3u);
}

TEST(CatalogTest, LoadRejectsGarbage) {
  const std::string path = TempPath("catalog_bad.txt");
  ASSERT_TRUE(WriteStringToFile(path, "nonsense record here\n").ok());
  Catalog catalog;
  EXPECT_TRUE(catalog.LoadFromFile(path).IsCorruption());
}

TEST(CatalogTest, CreateTableRejectsEmptyName) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateTable("", "raw", Schema::AllUint32(1), 10)
                  .IsInvalidArgument());
}

// Names with embedded whitespace used to shear the whitespace-split text
// format; percent-escaping makes them round-trip.
TEST(CatalogTest, PersistenceRoundTripEscapedNames) {
  const std::string path = TempPath("catalog_escaped.txt");
  Catalog catalog;
  Schema schema(
      std::vector<ColumnDef>{{"gene name", FieldType::kUint32},
                             {"50% identity\tmatch", FieldType::kString},
                             {"", FieldType::kInt64}},
      ',');
  ASSERT_TRUE(catalog
                  .CreateTable("my table", "/data/raw files/genes 2.sam",
                               schema, 128)
                  .ok());
  ASSERT_TRUE(catalog.SetChunkLayout("my table", TwoChunkLayout()).ok());
  StoredSegment seg;
  seg.page = {0, 10};
  seg.columns = {0};
  ASSERT_TRUE(catalog.RecordSegment("my table", 0, seg, {{0, {1, 2}}}).ok());
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  Catalog restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  auto meta = restored.GetTable("my table");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->raw_path, "/data/raw files/genes 2.sam");
  EXPECT_EQ(meta->schema.column(0).name, "gene name");
  EXPECT_EQ(meta->schema.column(1).name, "50% identity\tmatch");
  EXPECT_EQ(meta->schema.column(2).name, "");
  EXPECT_EQ(meta->chunks[0].stats.at(0).min_value, 1);
  EXPECT_EQ(meta->chunks[0].loaded_columns.count(0), 1u);
}

// Double zone-map bounds must survive a save/load bit-exactly — denormals,
// extreme magnitudes, and 17-significant-digit values included. Truncating
// them through the int64 path is the regression this guards against.
TEST(CatalogTest, PersistenceRoundTripAdversarialDoubles) {
  const std::string path = TempPath("catalog_doubles.txt");
  const double kAdversarial[][2] = {
      {5e-324, 2.2250738585072014e-308},     // denormal .. smallest normal
      {-DBL_MAX, DBL_MAX},
      {-0.0, 0.0},
      {0.1, 0.30000000000000004},            // classic non-representables
      {-9007199254740993.0, 9007199254740993.0},  // 2^53 + 1 territory
      {1.7976931348623155e+308, 1.7976931348623157e+308},
  };
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .CreateTable("t", "raw",
                               Schema::AllUint32(std::size(kAdversarial)), 10)
                  .ok());
  std::vector<ChunkMetadata> layout(1);
  layout[0].chunk_index = 0;
  ASSERT_TRUE(catalog.SetChunkLayout("t", std::move(layout)).ok());
  StoredSegment seg;
  seg.page = {0, 1};
  std::map<size_t, ColumnStats> stats;
  for (size_t i = 0; i < std::size(kAdversarial); ++i) {
    seg.columns.push_back(i);
    ColumnStats st;
    st.has_double = true;
    st.min_double = kAdversarial[i][0];
    st.max_double = kAdversarial[i][1];
    st.min_value = INT64_MIN;
    st.max_value = INT64_MAX;
    stats[i] = st;
  }
  ASSERT_TRUE(catalog.RecordSegment("t", 0, seg, stats).ok());
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  Catalog restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  auto meta = restored.GetTable("t");
  ASSERT_TRUE(meta.ok());
  for (size_t i = 0; i < std::size(kAdversarial); ++i) {
    const ColumnStats& st = meta->chunks[0].stats.at(i);
    ASSERT_TRUE(st.has_double) << "column " << i;
    // Bit-exact, not just value-equal: -0.0 must stay -0.0.
    uint64_t want_lo, want_hi, got_lo, got_hi;
    std::memcpy(&want_lo, &kAdversarial[i][0], 8);
    std::memcpy(&want_hi, &kAdversarial[i][1], 8);
    std::memcpy(&got_lo, &st.min_double, 8);
    std::memcpy(&got_hi, &st.max_double, 8);
    EXPECT_EQ(got_lo, want_lo) << "column " << i << " min";
    EXPECT_EQ(got_hi, want_hi) << "column " << i << " max";
  }
}

// The restart-then-skip regression: skip decisions taken from fractional
// double bounds must be identical before and after a catalog round-trip.
TEST(CatalogTest, RestartPreservesDoubleSkipDecisions) {
  const std::string path = TempPath("catalog_skip.txt");
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", "raw", Schema::AllUint32(1), 10).ok());
  std::vector<ChunkMetadata> layout(1);
  layout[0].chunk_index = 0;
  ASSERT_TRUE(catalog.SetChunkLayout("t", std::move(layout)).ok());
  StoredSegment seg;
  seg.columns = {0};
  ColumnStats st;
  st.has_double = true;
  st.min_double = -3.5;
  st.max_double = -0.5;
  st.min_value = -4;  // conservative floor/ceil envelope
  st.max_value = 0;
  ASSERT_TRUE(catalog.RecordSegment("t", 0, seg, {{0, st}}).ok());

  auto check = [](const ChunkMetadata& chunk) {
    // All values in [-3.5, -0.5]: a [0, 100] probe is skippable only with
    // the exact double upper bound (the int64 envelope rounds it to 0).
    EXPECT_TRUE(chunk.CanSkipForRange(0, 0, 100));
    EXPECT_TRUE(chunk.CanSkipForRange(0, -100, -4));
    EXPECT_FALSE(chunk.CanSkipForRange(0, -3, -1));
    // A probe at exactly -4 overlaps the int64 envelope but not the exact
    // double bounds — only the latter proves the chunk skippable.
    EXPECT_TRUE(chunk.CanSkipForRange(0, -4, -4));
  };
  check(catalog.GetTable("t")->chunks[0]);
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  Catalog restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  check(restored.GetTable("t")->chunks[0]);
}

TEST(CatalogTest, TornTrailingLineTolerated) {
  const std::string path = TempPath("catalog_torn.txt");
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", "raw", Schema::AllUint32(2), 10).ok());
  ASSERT_TRUE(catalog.SetChunkLayout("t", TwoChunkLayout()).ok());
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  // Simulate a legacy non-atomic writer dying mid-append: a partial record
  // with no final newline.
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteStringToFile(path, *contents + "seg t 1 99").ok());

  Catalog restored;
  Catalog::LoadStats stats;
  ASSERT_TRUE(restored.LoadFromFile(path, &stats).ok());
  EXPECT_TRUE(stats.torn_tail_dropped);
  EXPECT_EQ(stats.torn_tail, "seg t 1 99");
  auto meta = restored.GetTable("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->chunks.size(), 2u);
  EXPECT_TRUE(meta->chunks[1].segments.empty());  // torn record dropped
}

TEST(CatalogTest, TerminatedGarbageLineStillCorruption) {
  const std::string path = TempPath("catalog_mid.txt");
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", "raw", Schema::AllUint32(1), 10).ok());
  ASSERT_TRUE(catalog.SaveToFile(path).ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  // A newline-terminated bad record is real corruption, not a torn tail.
  ASSERT_TRUE(WriteStringToFile(path, *contents + "seg t 1 99\n").ok());
  Catalog restored;
  EXPECT_TRUE(restored.LoadFromFile(path).IsCorruption());
}

TEST(CatalogTest, LegacyV1HeaderlessFileLoads) {
  const std::string path = TempPath("catalog_v1.txt");
  // Hand-written v1 record set: no header, raw (unescaped) fields,
  // int-only stats.
  ASSERT_TRUE(WriteStringToFile(path,
                                "table t /raw/t.csv 44 100 1\n"
                                "col t c0 0\n"
                                "col t c1 3\n"
                                "chunk t 0 0 64 4\n"
                                "stat t 0 0 -3 88\n"
                                "seg t 0 0 55 0,1\n")
                  .ok());
  Catalog catalog;
  Catalog::LoadStats stats;
  ASSERT_TRUE(catalog.LoadFromFile(path, &stats).ok());
  EXPECT_EQ(stats.version, 1);
  auto meta = catalog.GetTable("t");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->raw_path, "/raw/t.csv");
  EXPECT_EQ(meta->schema.delimiter(), ',');
  EXPECT_EQ(meta->schema.column(1).type, FieldType::kString);
  EXPECT_EQ(meta->chunks[0].stats.at(0).min_value, -3);
  EXPECT_FALSE(meta->chunks[0].stats.at(0).has_double);
  EXPECT_EQ(meta->chunks[0].loaded_columns.size(), 2u);
}

TEST(CatalogTest, NewerFormatVersionRejected) {
  const std::string path = TempPath("catalog_future.txt");
  ASSERT_TRUE(WriteStringToFile(path, "scanraw-catalog v99\n").ok());
  Catalog catalog;
  EXPECT_TRUE(catalog.LoadFromFile(path).IsCorruption());
}

TEST(StatisticsTest, ComputesMinMaxAcrossTypes) {
  BinaryChunk chunk(0);
  ColumnVector u(FieldType::kUint32);
  u.AppendUint32(7);
  u.AppendUint32(3);
  u.AppendUint32(9);
  ColumnVector i(FieldType::kInt64);
  i.AppendInt64(-4);
  i.AppendInt64(100);
  i.AppendInt64(0);
  ColumnVector s(FieldType::kString);
  s.AppendString("a");
  s.AppendString("b");
  s.AppendString("c");
  ASSERT_TRUE(chunk.AddColumn(0, std::move(u)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(i)).ok());
  ASSERT_TRUE(chunk.AddColumn(2, std::move(s)).ok());
  auto stats = ComputeChunkStats(chunk);
  ASSERT_EQ(stats.size(), 2u);  // string column skipped
  EXPECT_EQ(stats.at(0).min_value, 3);
  EXPECT_EQ(stats.at(0).max_value, 9);
  EXPECT_EQ(stats.at(1).min_value, -4);
  EXPECT_EQ(stats.at(1).max_value, 100);
}

TEST(StatisticsTest, DoubleColumnsGetExactBoundsAndEnvelope) {
  BinaryChunk chunk(0);
  ColumnVector d(FieldType::kDouble);
  d.AppendDouble(-3.5);
  d.AppendDouble(2.25);
  d.AppendDouble(-0.5);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(d)).ok());
  auto stats = ComputeChunkStats(chunk);
  ASSERT_EQ(stats.size(), 1u);
  const ColumnStats& st = stats.at(0);
  ASSERT_TRUE(st.has_double);
  EXPECT_DOUBLE_EQ(st.min_double, -3.5);
  EXPECT_DOUBLE_EQ(st.max_double, 2.25);
  // Conservative integer envelope: floor of the min, ceil of the max.
  EXPECT_EQ(st.min_value, -4);
  EXPECT_EQ(st.max_value, 3);
}

TEST(StatisticsTest, EmptyChunkNoStats) {
  BinaryChunk chunk(0);
  EXPECT_TRUE(ComputeChunkStats(chunk).empty());
}

TEST(StatisticsTest, RangeCardinalityEstimate) {
  ChunkMetadata chunk;
  chunk.num_rows = 1000;
  chunk.stats[0] = {0, 99};
  EXPECT_EQ(EstimateRangeCardinality(chunk, 0, 0, 99), 1000u);
  EXPECT_EQ(EstimateRangeCardinality(chunk, 0, 200, 300), 0u);
  const uint64_t half = EstimateRangeCardinality(chunk, 0, 0, 49);
  EXPECT_NEAR(static_cast<double>(half), 500.0, 10.0);
  // No stats: conservative full count.
  EXPECT_EQ(EstimateRangeCardinality(chunk, 5, 0, 1), 1000u);
}

TEST(StorageManagerTest, WriteAndReadSegment) {
  auto storage = StorageManager::Create(TempPath("db1.bin"));
  ASSERT_TRUE(storage.ok());
  BinaryChunk chunk = MakeChunk(4, {1, 2, 3}, {10, 20, 30});
  auto seg = (*storage)->WriteChunk(chunk);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->columns, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(seg->page.offset, 0u);
  EXPECT_GT(seg->page.size, 0u);
  auto back = (*storage)->ReadSegment(seg->page);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->chunk_index(), 4u);
  EXPECT_EQ(back->column(1).AsUint32()[2], 30u);
}

TEST(StorageManagerTest, PartialColumnSegmentsMerge) {
  auto storage = StorageManager::Create(TempPath("db2.bin"));
  ASSERT_TRUE(storage.ok());
  BinaryChunk chunk = MakeChunk(0, {1, 2}, {7, 8});

  ChunkMetadata meta;
  meta.chunk_index = 0;
  meta.num_rows = 2;
  auto seg0 = (*storage)->WriteSegment(chunk, {0});
  ASSERT_TRUE(seg0.ok());
  meta.segments.push_back(*seg0);
  meta.loaded_columns.insert(0);

  // Column 1 not loaded yet: read must fail.
  auto missing = (*storage)->ReadChunkColumns(meta, {0, 1});
  EXPECT_TRUE(missing.status().IsNotFound());

  auto seg1 = (*storage)->WriteSegment(chunk, {1});
  ASSERT_TRUE(seg1.ok());
  meta.segments.push_back(*seg1);
  meta.loaded_columns.insert(1);

  auto merged = (*storage)->ReadChunkColumns(meta, {0, 1});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->column(0).AsUint32()[0], 1u);
  EXPECT_EQ(merged->column(1).AsUint32()[1], 8u);
}

TEST(StorageManagerTest, WriteMissingColumnRejected) {
  auto storage = StorageManager::Create(TempPath("db3.bin"));
  ASSERT_TRUE(storage.ok());
  BinaryChunk chunk = MakeChunk(0, {1}, {2});
  EXPECT_TRUE(
      (*storage)->WriteSegment(chunk, {5}).status().IsInvalidArgument());
}

TEST(StorageManagerTest, BytesWrittenAdvances) {
  auto storage = StorageManager::Create(TempPath("db4.bin"));
  ASSERT_TRUE(storage.ok());
  EXPECT_EQ((*storage)->bytes_written(), 0u);
  BinaryChunk chunk = MakeChunk(0, {1}, {2});
  ASSERT_TRUE((*storage)->WriteChunk(chunk).ok());
  const uint64_t after_one = (*storage)->bytes_written();
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE((*storage)->WriteChunk(chunk).ok());
  EXPECT_EQ((*storage)->bytes_written(), 2 * after_one);
}

class HeapScanTest : public testing::Test {
 protected:
  void SetUp() override {
    auto storage = StorageManager::Create(TempPath("heap.bin"));
    ASSERT_TRUE(storage.ok());
    storage_ = std::move(*storage);
    ASSERT_TRUE(
        catalog_.CreateTable("t", "raw", Schema::AllUint32(2), 3).ok());
    // Three chunks; chunk 1 stays unloaded.
    std::vector<ChunkMetadata> layout(3);
    for (int i = 0; i < 3; ++i) {
      layout[i].chunk_index = i;
      layout[i].num_rows = 3;
    }
    ASSERT_TRUE(catalog_.SetChunkLayout("t", std::move(layout)).ok());
    LoadChunk(0, {1, 2, 3}, {10, 20, 30});
    LoadChunk(2, {100, 200, 300}, {7, 8, 9});
  }

  void LoadChunk(uint64_t index, std::vector<uint32_t> c0,
                 std::vector<uint32_t> c1) {
    BinaryChunk chunk = MakeChunk(index, std::move(c0), std::move(c1));
    auto seg = storage_->WriteChunk(chunk);
    ASSERT_TRUE(seg.ok());
    ASSERT_TRUE(catalog_
                    .RecordSegment("t", index, *seg,
                                   ComputeChunkStats(chunk))
                    .ok());
  }

  Catalog catalog_;
  std::unique_ptr<StorageManager> storage_;
};

TEST_F(HeapScanTest, ScansOnlyLoadedChunks) {
  auto meta = catalog_.GetTable("t");
  ASSERT_TRUE(meta.ok());
  HeapScan scan(*meta, storage_.get(), {0, 1});
  std::vector<uint64_t> seen;
  while (true) {
    auto chunk = scan.Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    seen.push_back((*chunk)->chunk_index());
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 2}));
}

TEST(CatalogTest, AppendChunkIncrementalDiscovery) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", "raw", Schema::AllUint32(1), 10).ok());
  ChunkMetadata c0;
  c0.chunk_index = 0;
  c0.raw_offset = 0;
  c0.raw_size = 50;
  c0.num_rows = 5;
  ASSERT_TRUE(catalog.AppendChunk("t", c0).ok());
  // Idempotent re-append of an identical chunk (abandoned discovery).
  ASSERT_TRUE(catalog.AppendChunk("t", c0).ok());
  // Re-append with a different extent is rejected.
  ChunkMetadata c0_bad = c0;
  c0_bad.raw_size = 99;
  EXPECT_TRUE(catalog.AppendChunk("t", c0_bad).IsInvalidArgument());
  // Gap in indexes is rejected.
  ChunkMetadata c5;
  c5.chunk_index = 5;
  EXPECT_TRUE(catalog.AppendChunk("t", c5).IsInvalidArgument());
  // Sealing stops further appends.
  ASSERT_TRUE(catalog.MarkLayoutComplete("t").ok());
  ChunkMetadata c1;
  c1.chunk_index = 1;
  EXPECT_EQ(catalog.AppendChunk("t", c1).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.GetTable("t")->layout_known);
}

TEST(StorageManagerTest, OpenExistingReadsOldAndAppendsNew) {
  const std::string path = TempPath("reopen.bin");
  StoredSegment old_seg;
  {
    auto storage = StorageManager::Create(path);
    ASSERT_TRUE(storage.ok());
    auto seg = (*storage)->WriteChunk(MakeChunk(1, {10, 20}, {30, 40}));
    ASSERT_TRUE(seg.ok());
    old_seg = *seg;
  }
  auto reopened = StorageManager::OpenExisting(path);
  ASSERT_TRUE(reopened.ok());
  // Old segment still readable at its recorded PageRef.
  auto back = (*reopened)->ReadSegment(old_seg.page);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->column(0).AsUint32()[1], 20u);
  // New segments append after the existing data.
  auto seg2 = (*reopened)->WriteChunk(MakeChunk(2, {5}, {6}));
  ASSERT_TRUE(seg2.ok());
  EXPECT_EQ(seg2->page.offset, old_seg.page.size);
  auto back2 = (*reopened)->ReadSegment(seg2->page);
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2->chunk_index(), 2u);
}

TEST(StorageManagerTest, CompressedSegmentsRoundTrip) {
  auto storage = StorageManager::Create(TempPath("compressed.bin"));
  ASSERT_TRUE(storage.ok());
  (*storage)->SetCompression(true);
  EXPECT_TRUE((*storage)->compression());
  // Clustered values compress well and decode exactly.
  std::vector<uint32_t> sorted(1000), other(1000);
  for (uint32_t i = 0; i < 1000; ++i) {
    sorted[i] = 5000 + i;
    other[i] = i * 7;
  }
  auto seg = (*storage)->WriteChunk(MakeChunk(0, sorted, other));
  ASSERT_TRUE(seg.ok());
  EXPECT_LT(seg->page.size, 2 * 1000 * 4u);  // well under raw 8 KB
  auto back = (*storage)->ReadSegment(seg->page);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->column(0).AsUint32()[999], 5999u);
  EXPECT_EQ(back->column(1).AsUint32()[999], 999u * 7);
}

TEST_F(HeapScanTest, RangeFilterSkipsChunks) {
  auto meta = catalog_.GetTable("t");
  ASSERT_TRUE(meta.ok());
  HeapScan scan(*meta, storage_.get(), {0});
  scan.SetRangeFilter(0, 150, 400);  // chunk 0 (max 3) can be skipped
  std::vector<uint64_t> seen;
  while (true) {
    auto chunk = scan.Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    seen.push_back((*chunk)->chunk_index());
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{2}));
  EXPECT_EQ(scan.chunks_skipped(), 1u);
}

}  // namespace
}  // namespace scanraw
