// Durability tests for the persistent query log: JSONL round trips, seq
// resumption across reopen, size-based rotation, torn-append self-healing
// under fault injection, and fork-based kill-points in the middle of a
// rotation — reload must drop at most the torn record and report what it
// dropped in recovery-style counters.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/query_log.h"

namespace scanraw {
namespace obs {
namespace {

class QueryLogTest : public testing::Test {
 protected:
  void SetUp() override {
    std::string name = testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    path_ = testing::TempDir() + "/querylog_" + name + ".jsonl";
    (void)RemoveFileIfExists(path_);
    (void)RemoveFileIfExists(path_ + ".1");
  }

  static QueryLogEvent SampleEvent(const std::string& table) {
    QueryLogEvent e;
    e.table = table;
    e.policy = "speculative-loading";
    e.wall_seconds = 0.125;
    e.columns = {0, 2, 5};
    e.predicate_columns = {2};
    e.rows_scanned = 1000;
    e.rows_matched = 137;
    e.stage_busy_seconds = {{"READ", 0.05}, {"PARSE", 0.07}};
    e.chunks_from_cache = 1;
    e.chunks_from_db = 2;
    e.chunks_from_raw = 3;
    e.chunks_skipped = 4;
    e.chunks_written = 5;
    e.speculative_triggers = 6;
    e.bytes_read = 7777;
    e.bytes_written = 8888;
    e.useful_bytes_written = 4444;
    e.cache_hit_rate = 0.25;
    e.posmap_hit_rate = 0.75;
    e.speculation_paid_off = true;
    e.advisor_used = true;
    return e;
  }

  std::string path_;
};

TEST_F(QueryLogTest, EventJsonRoundTripsEveryField) {
  QueryLogEvent e = SampleEvent("lineitem \"quoted\"\nname");
  e.seq = 42;
  e.ts_unix_micros = 1723100000000000;
  e.status = "ok";
  const std::string line = e.ToJsonLine();
  ASSERT_EQ(line.find('\n'), std::string::npos) << "must be a single line";

  QueryLogEvent back;
  ASSERT_TRUE(QueryLogEvent::FromJsonLine(line, &back));
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.ts_unix_micros, 1723100000000000);
  EXPECT_EQ(back.table, e.table);
  EXPECT_EQ(back.policy, e.policy);
  EXPECT_EQ(back.status, "ok");
  EXPECT_DOUBLE_EQ(back.wall_seconds, 0.125);
  EXPECT_EQ(back.columns, e.columns);
  EXPECT_EQ(back.predicate_columns, e.predicate_columns);
  EXPECT_EQ(back.rows_scanned, 1000u);
  EXPECT_EQ(back.rows_matched, 137u);
  ASSERT_EQ(back.stage_busy_seconds.size(), 2u);
  EXPECT_EQ(back.stage_busy_seconds[0].first, "READ");
  EXPECT_DOUBLE_EQ(back.stage_busy_seconds[1].second, 0.07);
  EXPECT_EQ(back.chunks_from_cache, 1u);
  EXPECT_EQ(back.chunks_from_db, 2u);
  EXPECT_EQ(back.chunks_from_raw, 3u);
  EXPECT_EQ(back.chunks_skipped, 4u);
  EXPECT_EQ(back.chunks_written, 5u);
  EXPECT_EQ(back.speculative_triggers, 6u);
  EXPECT_EQ(back.bytes_read, 7777u);
  EXPECT_EQ(back.bytes_written, 8888u);
  EXPECT_EQ(back.useful_bytes_written, 4444u);
  EXPECT_DOUBLE_EQ(back.cache_hit_rate, 0.25);
  EXPECT_DOUBLE_EQ(back.posmap_hit_rate, 0.75);
  EXPECT_TRUE(back.speculation_paid_off);
  EXPECT_TRUE(back.advisor_used);
}

TEST_F(QueryLogTest, EveryTruncationOfALineIsRejected) {
  const std::string line = SampleEvent("t").ToJsonLine();
  for (size_t cut = 0; cut < line.size(); ++cut) {
    QueryLogEvent e;
    EXPECT_FALSE(
        QueryLogEvent::FromJsonLine(std::string_view(line).substr(0, cut), &e))
        << "torn prefix of length " << cut << " parsed as valid";
  }
  QueryLogEvent e;
  EXPECT_TRUE(QueryLogEvent::FromJsonLine(line, &e));
}

TEST_F(QueryLogTest, AppendAssignsSeqAndReadAllReturnsEverything) {
  auto log = QueryLog::Open(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  }
  EXPECT_EQ((*log)->events_appended(), 5u);
  ASSERT_TRUE((*log)->Close().ok());

  QueryLog::LoadStats stats;
  auto events = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 5u);
  for (size_t i = 0; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].seq, i + 1);
    EXPECT_GT((*events)[i].ts_unix_micros, 0);
  }
  EXPECT_EQ(stats.events, 5u);
  EXPECT_EQ(stats.max_seq, 5u);
  EXPECT_EQ(stats.dropped_torn, 0u);
  EXPECT_EQ(stats.dropped_corrupt, 0u);
  EXPECT_EQ(stats.version, 1);
}

TEST_F(QueryLogTest, ReopenResumesSequenceNumbers) {
  {
    auto log = QueryLog::Open(path_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  }
  auto log = QueryLog::Open(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->next_seq(), 3u);
  ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  ASSERT_TRUE((*log)->Close().ok());
  auto events = QueryLog::ReadAll(path_);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ(events->back().seq, 3u);
}

TEST_F(QueryLogTest, RotationKeepsOneGenerationAndReadAllMergesBoth) {
  QueryLogOptions options;
  options.rotate_bytes = 1024;  // a few events per generation
  auto log = QueryLog::Open(path_, options);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  }
  EXPECT_GT((*log)->rotations(), 0u);
  ASSERT_TRUE((*log)->Close().ok());
  ASSERT_TRUE(FileExists(path_ + ".1"));

  QueryLog::LoadStats stats;
  auto events = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(stats.generations, 2u);
  // Only one previous generation is kept, so early events may be gone, but
  // what survives is contiguous and ends at the newest seq.
  ASSERT_FALSE(events->empty());
  EXPECT_EQ(events->back().seq, 40u);
  for (size_t i = 1; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].seq, (*events)[i - 1].seq + 1);
  }
}

TEST_F(QueryLogTest, TornAppendDropsAtMostThatRecordOnReload) {
  auto log = QueryLog::Open(path_);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());

  {
    // Every matching append now fails after writing a torn prefix.
    FaultPlan plan;
    plan.path_substring = "querylog_";
    plan.append_error_rate = 1.0;
    plan.torn_fraction = 0.5;
    ScopedFaultInjection fault(plan);
    // The decorator wraps at open time, so reopen the log under injection.
    ASSERT_TRUE((*log)->Close().ok());
    auto injected = QueryLog::Open(path_);
    ASSERT_TRUE(injected.ok());
    EXPECT_FALSE((*injected)->Append(SampleEvent("t")).ok());
    EXPECT_EQ((*injected)->append_failures(), 1u);
    ASSERT_TRUE((*injected)->Close().ok());
  }

  // Reload: the torn trailing record is dropped, the intact one survives.
  QueryLog::LoadStats stats;
  auto events = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].seq, 1u);
  EXPECT_EQ(stats.dropped_torn + stats.dropped_corrupt, 1u);

  // The next incarnation self-heals the torn tail (Open detects the
  // unterminated line): later events are readable and at most the torn
  // record stays lost.
  auto healed = QueryLog::Open(path_);
  ASSERT_TRUE(healed.ok());
  ASSERT_TRUE((*healed)->Append(SampleEvent("t")).ok());
  ASSERT_TRUE((*healed)->Close().ok());
  auto after = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 2u);
  // Seq resumes from what survives on disk, so the healed event reuses the
  // torn record's number.
  EXPECT_EQ(after->back().seq, 2u);
  EXPECT_LE(stats.dropped_torn + stats.dropped_corrupt, 1u);
}

TEST_F(QueryLogTest, MidAppendKillLosesAtMostTheTornRecord) {
  {
    auto log = QueryLog::Open(path_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  const pid_t pid = fork();
  if (pid == 0) {
    FaultPlan plan;
    plan.path_substring = "querylog_";
    plan.kill_append_at = 2;  // die mid-way through the second append
    plan.torn_fraction = 0.5;
    ScopedFaultInjection fault(plan);
    auto log = QueryLog::Open(path_);
    if (!log.ok()) ::_exit(3);
    (void)(*log)->Append(SampleEvent("t"));
    (void)(*log)->Append(SampleEvent("t"));  // killed inside this append
    ::_exit(3);                              // kill point did not fire
  }
  ASSERT_GT(pid, 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), kFaultKillExitCode);

  QueryLog::LoadStats stats;
  auto events = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);  // pre-crash event + child's first append
  EXPECT_EQ(events->back().seq, 2u);
  EXPECT_EQ(stats.dropped_torn, 1u);

  // Restart after the crash: the log keeps appending past the torn tail.
  auto log = QueryLog::Open(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->next_seq(), 3u);
  ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  ASSERT_TRUE((*log)->Close().ok());
  auto after = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 3u);
}

class RotateKillTest : public QueryLogTest,
                       public testing::WithParamInterface<const char*> {};

TEST_P(RotateKillTest, KillDuringRotationReloadsCleanly) {
  const pid_t pid = fork();
  if (pid == 0) {
    FaultPlan plan;
    plan.kill_point = GetParam();
    plan.kill_point_hit = 1;
    ScopedFaultInjection fault(plan);
    QueryLogOptions options;
    options.rotate_bytes = 1024;
    auto log = QueryLog::Open(path_, options);
    if (!log.ok()) ::_exit(3);
    for (int i = 0; i < 40; ++i) {
      (void)(*log)->Append(SampleEvent("t"));  // killed inside a rotation
    }
    ::_exit(3);  // rotation kill point never fired
  }
  ASSERT_GT(pid, 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), kFaultKillExitCode)
      << "kill point " << GetParam() << " was not reached";

  // Reload from whatever the crash left: both generations parse, nothing
  // but (at most) a torn trailing record is missing, and the surviving
  // suffix of the sequence is contiguous.
  QueryLog::LoadStats stats;
  auto events = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_FALSE(events->empty());
  EXPECT_LE(stats.dropped_torn + stats.dropped_corrupt, 1u);
  for (size_t i = 1; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].seq, (*events)[i - 1].seq + 1);
  }

  // And the log is usable again: Open resumes past the crash point.
  auto log = QueryLog::Open(path_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->next_seq(), stats.max_seq + 1);
  ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  ASSERT_TRUE((*log)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(RotationProtocol, RotateKillTest,
                         testing::Values("querylog.rotate.before_rename",
                                         "querylog.rotate.after_rename"));

TEST_F(QueryLogTest, CorruptInteriorLineIsCountedNotFatal) {
  {
    auto log = QueryLog::Open(path_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  // Smash a terminated garbage line into the middle of the file, then a
  // valid tail after it.
  {
    auto file = WritableFile::OpenForAppend(path_);
    ASSERT_TRUE(file.ok());
    const std::string garbage = "{\"seq\":9999,\"broken\n";
    ASSERT_TRUE((*file)->Append(garbage.data(), garbage.size()).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto log = QueryLog::Open(path_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  QueryLog::LoadStats stats;
  auto events = QueryLog::ReadAll(path_, &stats);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 2u);
  EXPECT_EQ(stats.dropped_corrupt, 1u);
}

TEST_F(QueryLogTest, ObserverSeesEveryAppendedEvent) {
  auto log = QueryLog::Open(path_);
  ASSERT_TRUE(log.ok());
  std::vector<uint64_t> seen;
  (*log)->SetObserver(
      [&seen](const QueryLogEvent& e) { seen.push_back(e.seq); });
  ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  ASSERT_TRUE((*log)->Append(SampleEvent("t")).ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
