#include <gtest/gtest.h>

#include "scanraw/chunk_cache.h"

namespace scanraw {
namespace {

BinaryChunkPtr MakeChunk(uint64_t index) {
  auto chunk = std::make_shared<BinaryChunk>(index);
  ColumnVector vec(FieldType::kUint32);
  vec.AppendUint32(static_cast<uint32_t>(index));
  EXPECT_TRUE(chunk->AddColumn(0, std::move(vec)).ok());
  return chunk;
}

TEST(ChunkCacheTest, InsertAndLookup) {
  ChunkCache cache(4);
  EXPECT_TRUE(cache.Insert(1, MakeChunk(1), false).empty());
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->chunk_index(), 1u);
  EXPECT_EQ(cache.Lookup(99), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ChunkCacheTest, ZeroCapacityDisablesCaching) {
  ChunkCache cache(0);
  EXPECT_TRUE(cache.Insert(1, MakeChunk(1), false).empty());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(ChunkCacheTest, ZeroCapacityKeepsCountersAndQueriesConsistent) {
  ChunkCache cache(0);
  cache.Insert(1, MakeChunk(1), false);
  cache.Insert(2, MakeChunk(2), true);
  // Rejected inserts are not evictions, and nothing becomes resident.
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.biased_evictions(), 0u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_FALSE(cache.OldestUnloaded().has_value());
  EXPECT_TRUE(cache.UnloadedChunks().empty());
  EXPECT_TRUE(cache.ResidentChunks().empty());
  cache.MarkLoaded(1);  // no-op on a chunk that was never admitted
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ChunkCacheTest, RefreshWhileFullDoesNotEvict) {
  ChunkCache cache(2);
  cache.Insert(1, MakeChunk(1), false);
  cache.Insert(2, MakeChunk(2), false);
  // Refreshing a resident chunk while at capacity must not displace anyone.
  EXPECT_TRUE(cache.Insert(1, MakeChunk(1), false).empty());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  // A genuinely new chunk evicts exactly one victim.
  auto evicted = cache.Insert(3, MakeChunk(3), false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ChunkCacheTest, LruEviction) {
  ChunkCache cache(2, /*bias_evict_loaded=*/false);
  cache.Insert(1, MakeChunk(1), false);
  cache.Insert(2, MakeChunk(2), false);
  cache.Lookup(1);  // 2 becomes LRU
  auto evicted = cache.Insert(3, MakeChunk(3), false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].chunk_index, 2u);
  EXPECT_FALSE(evicted[0].was_loaded);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ChunkCacheTest, BiasEvictsLoadedFirst) {
  ChunkCache cache(2, /*bias_evict_loaded=*/true);
  cache.Insert(1, MakeChunk(1), /*loaded=*/false);
  cache.Insert(2, MakeChunk(2), /*loaded=*/true);
  cache.Lookup(2);  // chunk 1 is LRU, but chunk 2 is loaded
  auto evicted = cache.Insert(3, MakeChunk(3), false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].chunk_index, 2u);  // loaded chunk evicted despite MRU
  EXPECT_TRUE(evicted[0].was_loaded);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(ChunkCacheTest, BiasFallsBackToLruWhenNoneLoaded) {
  ChunkCache cache(2, /*bias_evict_loaded=*/true);
  cache.Insert(1, MakeChunk(1), false);
  cache.Insert(2, MakeChunk(2), false);
  auto evicted = cache.Insert(3, MakeChunk(3), false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].chunk_index, 1u);
}

TEST(ChunkCacheTest, ReinsertRefreshesAndKeepsLoadedSticky) {
  ChunkCache cache(4);
  cache.Insert(1, MakeChunk(1), true);
  cache.Insert(1, MakeChunk(1), false);  // refresh must not clear loaded
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.OldestUnloaded().has_value());
}

TEST(ChunkCacheTest, OldestUnloadedByInsertionOrder) {
  ChunkCache cache(4);
  cache.Insert(5, MakeChunk(5), false);
  cache.Insert(3, MakeChunk(3), false);
  cache.Insert(9, MakeChunk(9), true);
  auto victim = cache.OldestUnloaded();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->first, 5u);  // insertion order, not index order
  cache.MarkLoaded(5);
  victim = cache.OldestUnloaded();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->first, 3u);
  cache.MarkLoaded(3);
  EXPECT_FALSE(cache.OldestUnloaded().has_value());
}

TEST(ChunkCacheTest, UnloadedChunksInInsertionOrder) {
  ChunkCache cache(4);
  cache.Insert(7, MakeChunk(7), false);
  cache.Insert(2, MakeChunk(2), true);
  cache.Insert(4, MakeChunk(4), false);
  auto unloaded = cache.UnloadedChunks();
  ASSERT_EQ(unloaded.size(), 2u);
  EXPECT_EQ(unloaded[0].first, 7u);
  EXPECT_EQ(unloaded[1].first, 4u);
}

TEST(ChunkCacheTest, ResidentChunksSnapshot) {
  ChunkCache cache(4);
  cache.Insert(1, MakeChunk(1), false);
  cache.Insert(2, MakeChunk(2), false);
  auto resident = cache.ResidentChunks();
  EXPECT_EQ(resident.size(), 2u);
}

TEST(ChunkCacheTest, MarkLoadedOnMissingChunkIsNoOp) {
  ChunkCache cache(2);
  cache.MarkLoaded(42);  // must not crash
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ChunkCacheTest, EvictedChunkStillUsableViaSharedPtr) {
  ChunkCache cache(1);
  BinaryChunkPtr held = MakeChunk(1);
  cache.Insert(1, held, false);
  auto evicted = cache.Insert(2, MakeChunk(2), false);
  ASSERT_EQ(evicted.size(), 1u);
  // The shared_ptr keeps the chunk alive for in-flight consumers.
  EXPECT_EQ(held->column(0).AsUint32()[0], 1u);
  EXPECT_EQ(evicted[0].chunk->chunk_index(), 1u);
}

}  // namespace
}  // namespace scanraw
