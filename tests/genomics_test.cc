#include <gtest/gtest.h>

#include "genomics/bam_like.h"
#include "genomics/sam.h"
#include "io/file.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SamSchemaTest, ElevenMandatoryFields) {
  Schema schema = SamSchema();
  EXPECT_EQ(schema.num_columns(), 11u);
  EXPECT_EQ(schema.delimiter(), '\t');
  EXPECT_EQ(schema.column(kSamCigar).name, "CIGAR");
  EXPECT_EQ(schema.column(kSamCigar).type, FieldType::kString);
  EXPECT_EQ(schema.column(kSamFlag).type, FieldType::kUint32);
  EXPECT_EQ(schema.column(kSamTlen).type, FieldType::kInt64);
}

TEST(SamGeneratorTest, DeterministicAndWellFormed) {
  SamGenSpec spec;
  spec.num_reads = 50;
  spec.seed = 3;
  auto a = GenerateSamRecords(spec);
  auto b = GenerateSamRecords(spec);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(FormatSamLine(a[i]), FormatSamLine(b[i]));
    EXPECT_EQ(a[i].seq.size(), spec.read_length);
    EXPECT_EQ(a[i].qual.size(), spec.read_length);
    EXPECT_FALSE(a[i].cigar.empty());
    // Tab-delimited line has exactly 10 tabs (11 fields).
    const std::string line = FormatSamLine(a[i]);
    EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 10);
  }
}

TEST(SamGeneratorTest, PatternProbabilityRoughlyHolds) {
  SamGenSpec spec;
  spec.num_reads = 2000;
  spec.pattern_probability = 0.25;
  spec.seed = 11;
  auto records = GenerateSamRecords(spec);
  uint64_t matches = 0;
  for (const auto& r : records) {
    if (r.seq.find(spec.pattern) != std::string::npos) ++matches;
  }
  // Random sequences can also contain the pattern, so >= is the floor; the
  // 10-base pattern arises by chance with probability ~1e-4.
  EXPECT_NEAR(static_cast<double>(matches) / 2000.0, 0.25, 0.05);
}

TEST(SamFileTest, GroundTruthMatchesScanRawQuery) {
  const std::string path = TempPath("reads.sam");
  SamGenSpec spec;
  spec.num_reads = 3000;
  spec.seed = 17;
  auto info = GenerateSamFile(path, spec);
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->matching_reads, 0u);

  ScanRawManager::Config config;
  config.db_path = TempPath("reads.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 2;
  options.chunk_rows = 512;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("reads", path, SamSchema(), options).ok());

  auto result =
      (*manager)->Query("reads", CigarDistributionQuery(spec.pattern));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_scanned, spec.num_reads);
  EXPECT_EQ(result->rows_matched, info->matching_reads);
  ASSERT_EQ(result->groups.size(), info->cigar_distribution.size());
  for (const auto& [cigar, count] : info->cigar_distribution) {
    EXPECT_EQ(result->groups.at(cigar).count, count) << cigar;
  }
}

TEST(BamFileTest, RoundTripsRecordsExactly) {
  const std::string sam_path = TempPath("rt.sam");
  const std::string bam_path = TempPath("rt.bam");
  SamGenSpec spec;
  spec.num_reads = 1000;
  spec.seed = 23;
  ASSERT_TRUE(GenerateSamFile(sam_path, spec).ok());
  auto bam_info = GenerateBamFile(bam_path, spec, /*records_per_block=*/128);
  ASSERT_TRUE(bam_info.ok());
  EXPECT_EQ(bam_info->num_reads, 1000u);

  // The BAM-like binary must be smaller than the text (2-bit seq + RLE).
  auto sam_size = GetFileSize(sam_path);
  ASSERT_TRUE(sam_size.ok());
  EXPECT_LT(bam_info->file_bytes, *sam_size);

  auto reader = BamReader::Open(bam_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_reads(), 1000u);

  // Decoded records must match the generator's stream byte for byte.
  std::vector<SamRecord> expected;
  ASSERT_TRUE(ForEachGeneratedRecord(spec, [&](const SamRecord& r) {
                expected.push_back(r);
                return Status::OK();
              }).ok());
  SamRecord record;
  size_t i = 0;
  while (true) {
    auto more = (*reader)->NextRecord(&record);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(FormatSamLine(record), FormatSamLine(expected[i])) << "read " << i;
    ++i;
  }
  EXPECT_EQ(i, expected.size());
}

TEST(BamFileTest, CorruptionDetected) {
  const std::string bam_path = TempPath("corrupt.bam");
  SamGenSpec spec;
  spec.num_reads = 100;
  ASSERT_TRUE(GenerateBamFile(bam_path, spec, 32).ok());
  auto contents = ReadFileToString(bam_path);
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(bam_path, corrupted).ok());
  auto reader = BamReader::Open(bam_path);
  ASSERT_TRUE(reader.ok());
  SamRecord record;
  Status last;
  while (true) {
    auto more = (*reader)->NextRecord(&record);
    if (!more.ok()) {
      last = more.status();
      break;
    }
    if (!*more) break;
  }
  EXPECT_TRUE(last.IsCorruption());
}

TEST(BamFileTest, BadMagicRejected) {
  const std::string path = TempPath("notbam.bam");
  ASSERT_TRUE(WriteStringToFile(path, "definitely not a bam file").ok());
  EXPECT_TRUE(BamReader::Open(path).status().IsCorruption());
}

TEST(BamChunkStreamTest, QueryOverBamMatchesSam) {
  const std::string sam_path = TempPath("q.sam");
  const std::string bam_path = TempPath("q.bam");
  SamGenSpec spec;
  spec.num_reads = 2000;
  spec.seed = 31;
  auto sam_info = GenerateSamFile(sam_path, spec);
  ASSERT_TRUE(sam_info.ok());
  ASSERT_TRUE(GenerateBamFile(bam_path, spec).ok());

  auto reader = BamReader::Open(bam_path);
  ASSERT_TRUE(reader.ok());
  BamChunkStream stream(std::move(*reader), /*chunk_rows=*/256);
  auto result = RunQuery(CigarDistributionQuery(spec.pattern), &stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_scanned, spec.num_reads);
  EXPECT_EQ(result->rows_matched, sam_info->matching_reads);
  for (const auto& [cigar, count] : sam_info->cigar_distribution) {
    EXPECT_EQ(result->groups.at(cigar).count, count) << cigar;
  }
}

TEST(BamIndexTest, SeekMatchesSequentialRead) {
  const std::string bam_path = TempPath("indexed.bam");
  SamGenSpec spec;
  spec.num_reads = 1000;
  spec.seed = 41;
  ASSERT_TRUE(GenerateBamFile(bam_path, spec, /*records_per_block=*/128).ok());
  auto index = WriteBamIndex(bam_path);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_reads, 1000u);
  EXPECT_EQ(index->blocks.size(), 8u);  // ceil(1000/128)

  // Sequential ground truth.
  std::vector<std::string> expected;
  {
    auto reader = BamReader::Open(bam_path);
    ASSERT_TRUE(reader.ok());
    SamRecord record;
    while (true) {
      auto more = (*reader)->NextRecord(&record);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      expected.push_back(FormatSamLine(record));
    }
  }
  ASSERT_EQ(expected.size(), 1000u);

  // Seeks to assorted positions, including block boundaries.
  auto reader = BamReader::Open(bam_path);
  ASSERT_TRUE(reader.ok());
  SamRecord record;
  for (uint64_t target : {0u, 1u, 127u, 128u, 129u, 500u, 767u, 999u}) {
    ASSERT_TRUE((*reader)->SeekToRecord(*index, target).ok()) << target;
    auto more = (*reader)->NextRecord(&record);
    ASSERT_TRUE(more.ok() && *more) << target;
    EXPECT_EQ(FormatSamLine(record), expected[target]) << target;
    // And the stream continues correctly from there.
    if (target + 1 < 1000) {
      more = (*reader)->NextRecord(&record);
      ASSERT_TRUE(more.ok() && *more);
      EXPECT_EQ(FormatSamLine(record), expected[target + 1]) << target;
    }
  }
  // Out-of-range seek is rejected.
  EXPECT_EQ((*reader)->SeekToRecord(*index, 1000).code(),
            StatusCode::kOutOfRange);
}

TEST(BamIndexTest, PersistedIndexRoundTrips) {
  const std::string bam_path = TempPath("bai_rt.bam");
  SamGenSpec spec;
  spec.num_reads = 300;
  ASSERT_TRUE(GenerateBamFile(bam_path, spec, 64).ok());
  auto written = WriteBamIndex(bam_path);
  ASSERT_TRUE(written.ok());
  auto loaded = LoadBamIndex(bam_path + ".bai");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->blocks.size(), written->blocks.size());
  for (size_t i = 0; i < loaded->blocks.size(); ++i) {
    EXPECT_EQ(loaded->blocks[i].file_offset, written->blocks[i].file_offset);
    EXPECT_EQ(loaded->blocks[i].first_record,
              written->blocks[i].first_record);
    EXPECT_EQ(loaded->blocks[i].record_count,
              written->blocks[i].record_count);
    EXPECT_EQ(loaded->blocks[i].chain_state, written->blocks[i].chain_state);
  }
  // A seek through the loaded index works end to end.
  auto reader = BamReader::Open(bam_path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->SeekToRecord(*loaded, 200).ok());
  SamRecord record;
  auto more = (*reader)->NextRecord(&record);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(record.qname, "read.200");
}

TEST(BamIndexTest, CorruptIndexRejected) {
  const std::string path = TempPath("garbage.bai");
  ASSERT_TRUE(WriteStringToFile(path, "not an index").ok());
  EXPECT_TRUE(LoadBamIndex(path).status().IsCorruption());
}

TEST(MapRecordsTest, AllElevenColumnsMapped) {
  SamGenSpec spec;
  spec.num_reads = 5;
  auto records = GenerateSamRecords(spec);
  BinaryChunk chunk = MapRecordsToChunk(records, 9);
  EXPECT_EQ(chunk.chunk_index(), 9u);
  EXPECT_EQ(chunk.num_rows(), 5u);
  EXPECT_EQ(chunk.num_columns(), 11u);
  EXPECT_EQ(chunk.column(kSamQname).StringAt(0), records[0].qname);
  EXPECT_EQ(chunk.column(kSamFlag).AsUint32()[2], records[2].flag);
  EXPECT_EQ(chunk.column(kSamTlen).AsInt64()[4], records[4].tlen);
  EXPECT_EQ(chunk.column(kSamSeq).StringAt(1), records[1].seq);
}

}  // namespace
}  // namespace scanraw
