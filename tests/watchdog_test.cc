#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "datagen/csv_generator.h"
#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/heartbeat.h"
#include "obs/log.h"
#include "obs/watchdog.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

using obs::HeartbeatStage;
using obs::StageHeartbeats;
using obs::Watchdog;
using obs::WatchdogOptions;

constexpr int64_t kMsNanos = 1'000'000;

std::string TestPath(const std::string& suffix) {
  std::string name = testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  return testing::TempDir() + "/watchdog_" + name + "_" + suffix;
}

// Silences the ERROR lines stall reports print; the assertions below read
// the structured reports instead.
class WatchdogTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::Logger::Global()->SetStderrEnabled(false);
  }
  void TearDown() override {
    obs::Logger::Global()->SetStderrEnabled(true);
  }
};

TEST_F(WatchdogTest, DetectsFrozenActiveStage) {
  VirtualClock clock;
  StageHeartbeats hb;
  WatchdogOptions options;
  options.window_ms = 100;
  options.clock = &clock;
  options.flight_dump_path = TestPath("dump.txt");
  Watchdog dog(&hb, options);

  hb.Enter(HeartbeatStage::kRead);
  dog.CheckNow();  // sees fresh beats: progress
  clock.AdvanceNanos(50 * kMsNanos);
  dog.CheckNow();  // frozen; episode starts here
  EXPECT_EQ(dog.stalls_detected(), 0u);
  clock.AdvanceNanos(99 * kMsNanos);
  dog.CheckNow();  // 99 ms frozen: still under the window
  EXPECT_EQ(dog.stalls_detected(), 0u);
  clock.AdvanceNanos(2 * kMsNanos);
  dog.CheckNow();  // 101 ms frozen: stall
  ASSERT_EQ(dog.stalls_detected(), 1u);

  auto reports = dog.Reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].stage, HeartbeatStage::kRead);
  EXPECT_GE(reports[0].stalled_ms, 100);
  EXPECT_EQ(reports[0].active, 1);
  // The stall dumped the flight recorder to the requested path.
  EXPECT_TRUE(FileExists(options.flight_dump_path));
  auto dump = ReadFileToString(options.flight_dump_path);
  ASSERT_TRUE(dump.ok());
  EXPECT_FALSE(dump->empty());
  hb.Leave(HeartbeatStage::kRead);
}

TEST_F(WatchdogTest, IdleStageNeverAlarms) {
  VirtualClock clock;
  StageHeartbeats hb;
  WatchdogOptions options;
  options.window_ms = 10;
  options.clock = &clock;
  options.flight_dump_path = TestPath("dump.txt");
  Watchdog dog(&hb, options);
  // active == 0 throughout: frozen beats mean "nothing to do", not a hang.
  for (int i = 0; i < 20; ++i) {
    clock.AdvanceNanos(10 * kMsNanos);
    dog.CheckNow();
  }
  EXPECT_EQ(dog.stalls_detected(), 0u);
}

TEST_F(WatchdogTest, OneReportPerEpisodeRealarmsAfterProgress) {
  VirtualClock clock;
  StageHeartbeats hb;
  WatchdogOptions options;
  options.window_ms = 100;
  options.clock = &clock;
  options.flight_dump_path = TestPath("dump.txt");
  Watchdog dog(&hb, options);

  hb.Enter(HeartbeatStage::kParse);
  dog.CheckNow();
  auto stall_once = [&] {
    clock.AdvanceNanos(10 * kMsNanos);
    dog.CheckNow();  // freeze observed; episode starts
    clock.AdvanceNanos(150 * kMsNanos);
    dog.CheckNow();  // alarm
  };
  stall_once();
  EXPECT_EQ(dog.stalls_detected(), 1u);
  // Still wedged: more ticks must not re-report the same episode.
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceNanos(200 * kMsNanos);
    dog.CheckNow();
  }
  EXPECT_EQ(dog.stalls_detected(), 1u);
  // Progress resumes, then the stage wedges again: a new episode alarms.
  hb.Beat(HeartbeatStage::kParse);
  dog.CheckNow();
  stall_once();
  EXPECT_EQ(dog.stalls_detected(), 2u);
  hb.Leave(HeartbeatStage::kParse);
}

TEST_F(WatchdogTest, EnvVarSuppliesDumpPathWhenOptionEmpty) {
  const std::string env_path = TestPath("env_dump.txt");
  ASSERT_EQ(setenv("SCANRAW_FLIGHT_DUMP", env_path.c_str(), 1), 0);
  VirtualClock clock;
  StageHeartbeats hb;
  WatchdogOptions options;
  options.window_ms = 50;
  options.clock = &clock;  // flight_dump_path left empty
  Watchdog dog(&hb, options);
  hb.Enter(HeartbeatStage::kWrite);
  dog.CheckNow();
  clock.AdvanceNanos(10 * kMsNanos);
  dog.CheckNow();
  clock.AdvanceNanos(100 * kMsNanos);
  dog.CheckNow();
  ASSERT_EQ(unsetenv("SCANRAW_FLIGHT_DUMP"), 0);
  ASSERT_EQ(dog.stalls_detected(), 1u);
  EXPECT_TRUE(FileExists(env_path));
  hb.Leave(HeartbeatStage::kWrite);
}

TEST_F(WatchdogTest, BackgroundThreadAlarmsWithinTwiceTheWindow) {
  StageHeartbeats hb;
  WatchdogOptions options;
  options.window_ms = 50;  // real clock; check interval defaults to 12 ms
  options.flight_dump_path = TestPath("dump.txt");
  Watchdog dog(&hb, options);
  hb.Enter(HeartbeatStage::kRead);
  dog.Start();
  const int64_t deadline =
      RealClock::Instance()->NowNanos() + 2 * 50 * kMsNanos + 50 * kMsNanos;
  while (dog.stalls_detected() == 0 &&
         RealClock::Instance()->NowNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  dog.Stop();
  EXPECT_GE(dog.stalls_detected(), 1u);
  hb.Leave(HeartbeatStage::kRead);
}

// Integration: a real scan whose raw-file reads hang (fault-injected device
// delay) must trip the manager-owned watchdog and leave a flight dump.
class WatchdogScanTest : public WatchdogTest {
 protected:
  static constexpr uint64_t kRows = 1000;
  static constexpr size_t kCols = 4;

  void SetUp() override {
    WatchdogTest::SetUp();
    csv_path_ = TestPath("data.csv");
    CsvSpec spec;
    spec.num_rows = kRows;
    spec.num_columns = kCols;
    spec.seed = 7;
    auto info = GenerateCsvFile(csv_path_, spec);
    ASSERT_TRUE(info.ok());
    info_ = *info;
    schema_ = CsvSchema(spec);
  }

  QuerySpec SumAllQuery() const {
    QuerySpec spec;
    for (size_t c = 0; c < kCols; ++c) spec.sum_columns.push_back(c);
    return spec;
  }

  std::string csv_path_;
  CsvFileInfo info_;
  Schema schema_;
};

TEST_F(WatchdogScanTest, InjectedReadStallProducesReportAndFlightDump) {
  const std::string dump_path = TestPath("flight.txt");
  ScanRawManager::Config config;
  config.db_path = csv_path_ + ".db";
  config.watchdog_ms = 80;
  config.watchdog_dump_path = dump_path;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 2;
  options.chunk_rows = 250;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("t", csv_path_, schema_, options).ok());

  // Every read of the raw file sleeps 400 ms — far past the 80 ms window —
  // while the READ stage is active, so the watchdog must fire during the
  // scan. Only the .csv is delayed; database I/O proceeds normally.
  FaultPlan plan;
  plan.path_substring = ".csv";
  plan.read_delay_ms = 400;
  ScopedFaultInjection fault(plan);

  auto result = (*manager)->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);

  ASSERT_NE((*manager)->watchdog(), nullptr);
  EXPECT_GE((*manager)->watchdog()->stalls_detected(), 1u);
  auto reports = (*manager)->watchdog()->Reports();
  ASSERT_FALSE(reports.empty());
  bool read_stall = false;
  for (const auto& r : reports) {
    if (r.stage == HeartbeatStage::kRead ||
        r.stage == HeartbeatStage::kArbiter) {
      read_stall = true;
      EXPECT_GE(r.stalled_ms, 80);
    }
  }
  EXPECT_TRUE(read_stall);

  // Tear the manager down while the injection is still installed: its
  // background write threads read the global injector, so the injector
  // must outlive them.
  manager->reset();

  EXPECT_TRUE(FileExists(dump_path));
  auto dump = ReadFileToString(dump_path);
  ASSERT_TRUE(dump.ok());
  EXPECT_FALSE(dump->empty());
}

TEST_F(WatchdogScanTest, HealthyScanRaisesNoFalsePositive) {
  ScanRawManager::Config config;
  config.db_path = csv_path_ + ".db";
  config.watchdog_ms = 2000;  // generous for an un-delayed tiny scan
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.num_workers = 2;
  options.chunk_rows = 250;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("t", csv_path_, schema_, options).ok());
  for (int q = 0; q < 3; ++q) {
    auto result = (*manager)->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum);
  }
  ASSERT_NE((*manager)->watchdog(), nullptr);
  EXPECT_EQ((*manager)->watchdog()->stalls_detected(), 0u);
}

}  // namespace
}  // namespace scanraw
