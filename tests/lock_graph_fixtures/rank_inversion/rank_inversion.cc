#include "rank_inversion.h"

void High::Touch() { MutexLock lock(mu_); }

void Low::Grab() {
  MutexLock lock(mu_);
  high_->Touch();  // kLow(100) held while acquiring kHigh(900): inversion
}
