// Fixture: a seeded rank inversion — a low-ranked lock is held while
// acquiring a high-ranked one. No cycle exists, but the acquisition order
// contradicts the declared hierarchy; tools/lock_graph.py must exit
// nonzero and report the inversion.
#ifndef FIXTURE_RANK_INVERSION_H_
#define FIXTURE_RANK_INVERSION_H_

enum class LockRank : int {
  kUnranked = 0,
  kLow = 100,
  kIoBoundary = 500,
  kHigh = 900,
};

class Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name);
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class High {
 public:
  void Touch();

 private:
  Mutex mu_{LockRank::kHigh, "High.mu"};
};

class Low {
 public:
  void Grab();

 private:
  High* high_ = nullptr;
  Mutex mu_{LockRank::kLow, "Low.mu"};
};

#endif  // FIXTURE_RANK_INVERSION_H_
