#include "abba.h"

void A::Foo() {
  MutexLock lock(mu_);
  b_->Bar();  // holds A.mu, acquires B.mu
}

void A::Qux() { MutexLock lock(mu_); }

void B::Bar() { MutexLock lock(mu_); }

void B::Baz() {
  MutexLock lock(mu_);
  a_->Qux();  // holds B.mu, acquires A.mu -> ABBA with A::Foo
}
