// Fixture: a seeded ABBA deadlock between two unranked mutexes. Thread 1
// runs A::Foo (A.mu then B.mu via Bar), thread 2 runs B::Baz (B.mu then
// A.mu via Qux) — a cycle in the may-hold-while-acquiring graph.
// tools/lock_graph.py must exit nonzero and name the cycle.
#ifndef FIXTURE_ABBA_H_
#define FIXTURE_ABBA_H_

class Mutex {
 public:
  Mutex() = default;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class B;

class A {
 public:
  void Foo();
  void Qux();

 private:
  B* b_ = nullptr;
  Mutex mu_;
};

class B {
 public:
  void Bar();
  void Baz();

 private:
  A* a_ = nullptr;
  Mutex mu_;
};

#endif  // FIXTURE_ABBA_H_
