#include "clean.h"

void Low::Poke() { MutexLock lock(mu_); }

void Mid::Touch() {
  MutexLock lock(mu_);
  low_->Poke();  // kMid(300) -> kLow(100): decreasing, fine
}

void High::Sweep() {
  MutexLock lock(mu_);
  mid_->Touch();  // kHigh(900) -> kMid(300) -> kLow(100): fine
}
