// Fixture: a well-ordered three-level lock hierarchy. Every acquisition
// strictly decreases rank, so tools/lock_graph.py must exit 0.
#ifndef FIXTURE_CLEAN_H_
#define FIXTURE_CLEAN_H_

enum class LockRank : int {
  kUnranked = 0,
  kLow = 100,
  kMid = 300,
  kIoBoundary = 500,
  kHigh = 900,
};

class Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name);
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class Low {
 public:
  void Poke();

 private:
  // Digit-separator regression guard: 1'000'000 must not derail the
  // fallback parser's literal stripping.
  long budget_ = 1'000'000;
  Mutex mu_{LockRank::kLow, "Low.mu"};
};

class Mid {
 public:
  void Touch();

 private:
  Low* low_ = nullptr;
  Mutex mu_{LockRank::kMid, "Mid.mu"};
};

class High {
 public:
  void Sweep();

 private:
  Mid* mid_ = nullptr;
  Mutex mu_{LockRank::kHigh, "High.mu"};
};

#endif  // FIXTURE_CLEAN_H_
