#!/usr/bin/env python3
"""Unit tests for tools/lock_graph.py over the seeded fixtures.

Pins the analyzer's contract: exit 0 on a well-ordered hierarchy, exit
nonzero naming the defect on a seeded ABBA cycle and on a seeded rank
inversion, and a DOT artifact that reflects the graph.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.environ.get(
    "SCANRAW_LOCK_GRAPH_ROOT",
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
TOOL = os.path.join(REPO_ROOT, "tools", "lock_graph.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lock_graph_fixtures")


def run_tool(*extra_args):
    proc = subprocess.run(
        [sys.executable, TOOL, "--engine=fallback"] + list(extra_args),
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


class LockGraphFixtureTest(unittest.TestCase):

    def test_clean_hierarchy_passes(self):
        rc, out = run_tool("--src", os.path.join(FIXTURES, "clean"))
        self.assertEqual(rc, 0, out)
        self.assertIn("lock order OK", out)

    def test_abba_cycle_fails(self):
        rc, out = run_tool("--src", os.path.join(FIXTURES, "abba"))
        self.assertEqual(rc, 1, out)
        self.assertIn("cycle", out)
        self.assertIn("A.mu_", out)
        self.assertIn("B.mu_", out)

    def test_rank_inversion_fails(self):
        rc, out = run_tool("--src",
                           os.path.join(FIXTURES, "rank_inversion"))
        self.assertEqual(rc, 1, out)
        self.assertIn("rank violation", out)
        self.assertIn("kHigh", out)
        self.assertIn("kLow", out)

    def test_rank_inversion_names_the_acquisition_site(self):
        rc, out = run_tool("--src",
                           os.path.join(FIXTURES, "rank_inversion"))
        self.assertEqual(rc, 1, out)
        self.assertIn("rank_inversion.cc", out)

    def test_dot_artifact_reflects_edges(self):
        with tempfile.TemporaryDirectory() as tmp:
            dot = os.path.join(tmp, "graph.dot")
            rc, out = run_tool("--src", os.path.join(FIXTURES, "clean"),
                               "--dot", dot)
            self.assertEqual(rc, 0, out)
            with open(dot) as fh:
                body = fh.read()
            self.assertIn("digraph lock_order", body)
            self.assertIn('"High.mu_" -> "Mid.mu_"', body)
            self.assertIn('"Mid.mu_" -> "Low.mu_"', body)

    def test_dot_marks_inversions_red(self):
        with tempfile.TemporaryDirectory() as tmp:
            dot = os.path.join(tmp, "graph.dot")
            rc, _ = run_tool("--src",
                             os.path.join(FIXTURES, "rank_inversion"),
                             "--dot", dot)
            self.assertEqual(rc, 1)
            with open(dot) as fh:
                body = fh.read()
            self.assertIn("color=red", body)

    def test_real_tree_is_clean(self):
        rc, out = run_tool("--src", os.path.join(REPO_ROOT, "src"))
        self.assertEqual(rc, 0, out)
        self.assertIn("lock order OK", out)

    def test_digit_separators_do_not_break_parsing(self):
        # clean.h embeds 1'000'000; if the literal stripper mispaired the
        # quotes the class extents would collapse and the lock count drop.
        rc, out = run_tool("--src", os.path.join(FIXTURES, "clean"),
                           "--verbose")
        self.assertEqual(rc, 0, out)
        self.assertIn("3 locks (3 ranked)", out)


if __name__ == "__main__":
    unittest.main()
