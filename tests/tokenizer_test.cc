#include <gtest/gtest.h>

#include "format/tokenizer.h"

namespace scanraw {
namespace {

TokenizeOptions Opts(size_t schema_fields, size_t max_fields = 0,
                     char delim = ',') {
  TokenizeOptions o;
  o.delimiter = delim;
  o.schema_fields = schema_fields;
  o.max_fields = max_fields;
  return o;
}

// Extracts field (r, f) text using the positional map.
std::string Field(const TextChunk& chunk, const PositionalMap& map, size_t r,
                  size_t f) {
  return std::string(chunk.data.substr(map.FieldStart(r, f),
                                       map.FieldEnd(r, f) -
                                           map.FieldStart(r, f)));
}

TEST(TokenizerTest, SingleRowAllFields) {
  TextChunk chunk = MakeTextChunk("10,200,3000\n");
  ASSERT_EQ(chunk.num_rows(), 1u);
  auto map = TokenizeChunk(chunk, Opts(3));
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(Field(chunk, *map, 0, 0), "10");
  EXPECT_EQ(Field(chunk, *map, 0, 1), "200");
  EXPECT_EQ(Field(chunk, *map, 0, 2), "3000");
}

TEST(TokenizerTest, MultipleRows) {
  TextChunk chunk = MakeTextChunk("1,2\n3,4\n5,6\n");
  auto map = TokenizeChunk(chunk, Opts(2));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->num_rows(), 3u);
  EXPECT_EQ(Field(chunk, *map, 2, 0), "5");
  EXPECT_EQ(Field(chunk, *map, 2, 1), "6");
}

TEST(TokenizerTest, NoTrailingNewline) {
  TextChunk chunk = MakeTextChunk("7,8\n9,10");
  auto map = TokenizeChunk(chunk, Opts(2));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(Field(chunk, *map, 1, 1), "10");
}

TEST(TokenizerTest, CarriageReturnStripped) {
  TextChunk chunk = MakeTextChunk("1,2\r\n3,4\r\n");
  auto map = TokenizeChunk(chunk, Opts(2));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(Field(chunk, *map, 0, 1), "2");
  EXPECT_EQ(Field(chunk, *map, 1, 1), "4");
}

TEST(TokenizerTest, EmptyFields) {
  TextChunk chunk = MakeTextChunk(",,\n");
  auto map = TokenizeChunk(chunk, Opts(3));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(Field(chunk, *map, 0, 0), "");
  EXPECT_EQ(Field(chunk, *map, 0, 1), "");
  EXPECT_EQ(Field(chunk, *map, 0, 2), "");
}

TEST(TokenizerTest, TabDelimiter) {
  TextChunk chunk = MakeTextChunk("a\tb\tc\n");
  auto map = TokenizeChunk(chunk, Opts(3, 0, '\t'));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(Field(chunk, *map, 0, 1), "b");
}

TEST(TokenizerTest, SelectiveTokenizingStopsEarly) {
  TextChunk chunk = MakeTextChunk("1,2,3,4,5,6,7,8\n");
  auto map = TokenizeChunk(chunk, Opts(8, 3));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->fields_per_row(), 3u);
  EXPECT_FALSE(map->IsCompleteFor(8));
  EXPECT_TRUE(map->IsCompleteFor(3));
  EXPECT_EQ(Field(chunk, *map, 0, 0), "1");
  EXPECT_EQ(Field(chunk, *map, 0, 1), "2");
  EXPECT_EQ(Field(chunk, *map, 0, 2), "3");
}

TEST(TokenizerTest, SelectiveBeyondSchemaClamps) {
  TextChunk chunk = MakeTextChunk("1,2\n");
  auto map = TokenizeChunk(chunk, Opts(2, 10));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->fields_per_row(), 2u);
}

TEST(TokenizerTest, MissingFieldIsCorruption) {
  TextChunk chunk = MakeTextChunk("1,2,3\n1,2\n");
  auto map = TokenizeChunk(chunk, Opts(3));
  ASSERT_FALSE(map.ok());
  EXPECT_TRUE(map.status().IsCorruption());
}

TEST(TokenizerTest, ExtraFieldIsCorruption) {
  TextChunk chunk = MakeTextChunk("1,2,3,4\n");
  auto map = TokenizeChunk(chunk, Opts(3));
  ASSERT_FALSE(map.ok());
  EXPECT_TRUE(map.status().IsCorruption());
}

TEST(TokenizerTest, ZeroSchemaFieldsRejected) {
  TextChunk chunk = MakeTextChunk("1\n");
  auto map = TokenizeChunk(chunk, Opts(0));
  ASSERT_FALSE(map.ok());
  EXPECT_TRUE(map.status().IsInvalidArgument());
}

TEST(TokenizerTest, EmptyChunk) {
  TextChunk chunk = MakeTextChunk("");
  auto map = TokenizeChunk(chunk, Opts(3));
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->num_rows(), 0u);
}

TEST(MakeTextChunkTest, LineStartsComputed) {
  TextChunk chunk = MakeTextChunk("ab\ncd\nef\n", 4, 100);
  EXPECT_EQ(chunk.chunk_index, 4u);
  EXPECT_EQ(chunk.file_offset, 100u);
  ASSERT_EQ(chunk.num_rows(), 3u);
  EXPECT_EQ(chunk.line(0), "ab");
  EXPECT_EQ(chunk.line(1), "cd");
  EXPECT_EQ(chunk.line(2), "ef");
}

// Property sweep: tokenizing a generated W-field chunk recovers every field
// for all selective widths.
class TokenizerSweepTest
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(TokenizerSweepTest, FieldsRecovered) {
  const auto [width, max_fields] = GetParam();
  std::string data;
  const size_t rows = 13;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t f = 0; f < width; ++f) {
      if (f > 0) data.push_back(',');
      data += std::to_string(r * 1000 + f);
    }
    data.push_back('\n');
  }
  TextChunk chunk = MakeTextChunk(std::move(data));
  auto map = TokenizeChunk(chunk, Opts(width, max_fields));
  ASSERT_TRUE(map.ok());
  const size_t effective =
      (max_fields == 0 || max_fields > width) ? width : max_fields;
  ASSERT_EQ(map->fields_per_row(), effective);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t f = 0; f < effective; ++f) {
      EXPECT_EQ(Field(chunk, *map, r, f), std::to_string(r * 1000 + f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSelective, TokenizerSweepTest,
    testing::Combine(testing::Values(1, 2, 5, 16, 64),
                     testing::Values(0, 1, 3, 64)));

TEST(ExtendTokenizeMapTest, ExtendsPartialMap) {
  TextChunk chunk = MakeTextChunk("10,20,30,40,50\n60,70,80,90,11\n");
  auto base = TokenizeChunk(chunk, Opts(5, 2));
  ASSERT_TRUE(base.ok());
  auto extended = ExtendTokenizeMap(chunk, *base, Opts(5, 4));
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();
  EXPECT_EQ(extended->fields_per_row(), 4u);
  EXPECT_EQ(Field(chunk, *extended, 0, 0), "10");
  EXPECT_EQ(Field(chunk, *extended, 0, 2), "30");
  EXPECT_EQ(Field(chunk, *extended, 0, 3), "40");
  EXPECT_EQ(Field(chunk, *extended, 1, 3), "90");
}

TEST(ExtendTokenizeMapTest, ExtendToFullSchema) {
  TextChunk chunk = MakeTextChunk("1,2,3\n4,5,6\n");
  auto base = TokenizeChunk(chunk, Opts(3, 1));
  ASSERT_TRUE(base.ok());
  auto full = ExtendTokenizeMap(chunk, *base, Opts(3));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t f = 0; f < 3; ++f) {
      EXPECT_EQ(Field(chunk, *full, r, f),
                std::to_string(r * 3 + f + 1));
    }
  }
}

TEST(ExtendTokenizeMapTest, NarrowerRequestCopies) {
  TextChunk chunk = MakeTextChunk("1,2,3,4\n");
  auto base = TokenizeChunk(chunk, Opts(4));
  ASSERT_TRUE(base.ok());
  auto narrow = ExtendTokenizeMap(chunk, *base, Opts(4, 2));
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->fields_per_row(), 2u);
  EXPECT_EQ(Field(chunk, *narrow, 0, 0), "1");
  EXPECT_EQ(Field(chunk, *narrow, 0, 1), "2");
}

TEST(ExtendTokenizeMapTest, MatchesDirectTokenizeOnSweep) {
  std::string data;
  for (int r = 0; r < 9; ++r) {
    for (int f = 0; f < 10; ++f) {
      if (f > 0) data.push_back(',');
      data += std::to_string(r * 100 + f);
    }
    data.push_back('\n');
  }
  TextChunk chunk = MakeTextChunk(std::move(data));
  for (size_t base_fields : {1, 3, 7, 9}) {
    for (size_t target : {4, 8, 10}) {
      auto base = TokenizeChunk(chunk, Opts(10, base_fields));
      ASSERT_TRUE(base.ok());
      auto extended = ExtendTokenizeMap(chunk, *base, Opts(10, target));
      ASSERT_TRUE(extended.ok())
          << base_fields << "->" << target << ": "
          << extended.status().ToString();
      auto direct = TokenizeChunk(chunk, Opts(10, target));
      ASSERT_TRUE(direct.ok());
      ASSERT_EQ(extended->fields_per_row(), direct->fields_per_row());
      for (size_t r = 0; r < chunk.num_rows(); ++r) {
        for (size_t f = 0; f < extended->fields_per_row(); ++f) {
          EXPECT_EQ(Field(chunk, *extended, r, f), Field(chunk, *direct, r, f))
              << base_fields << "->" << target << " row " << r << " field "
              << f;
        }
      }
    }
  }
}

TEST(ExtendTokenizeMapTest, DetectsMissingFields) {
  TextChunk chunk = MakeTextChunk("1,2\n");
  auto base = TokenizeChunk(chunk, Opts(5, 2));
  ASSERT_TRUE(base.ok());
  auto extended = ExtendTokenizeMap(chunk, *base, Opts(5, 4));
  ASSERT_FALSE(extended.ok());
  EXPECT_TRUE(extended.status().IsCorruption());
}

TEST(ExtendTokenizeMapTest, DetectsExtraFields) {
  TextChunk chunk = MakeTextChunk("1,2,3,4,5\n");
  auto base = TokenizeChunk(chunk, Opts(4, 2));
  ASSERT_TRUE(base.ok());
  auto extended = ExtendTokenizeMap(chunk, *base, Opts(4));
  ASSERT_FALSE(extended.ok());
  EXPECT_TRUE(extended.status().IsCorruption());
}

TEST(ExtendTokenizeMapTest, RowMismatchRejected) {
  TextChunk a = MakeTextChunk("1,2\n3,4\n");
  TextChunk b = MakeTextChunk("1,2\n");
  auto base = TokenizeChunk(a, Opts(2, 1));
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(
      ExtendTokenizeMap(b, *base, Opts(2)).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scanraw
