#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pipeline/bounded_queue.h"
#include "pipeline/thread_pool.h"

namespace scanraw {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.Full());
  int v = 3;
  EXPECT_FALSE(q.TryPush(std::move(v)));
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, TryPushFailureLeavesItemIntact) {
  BoundedQueue<std::string> q(1);
  EXPECT_TRUE(q.TryPush(std::string("a")));
  std::string item = "precious";
  EXPECT_FALSE(q.TryPush(std::move(item)));
  EXPECT_EQ(item, "precious");  // untouched on failure
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(7);
  q.Push(8);
  q.Close();
  EXPECT_FALSE(q.Push(9));
  EXPECT_EQ(*q.Pop(), 7);
  EXPECT_EQ(*q.Pop(), 8);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, CloseUnblocksWaiters) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(2));  // blocked until Close, then fails
    push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
}

TEST(BoundedQueueTest, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) total += *v;
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(total.load(),
            static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::thread::id task_thread;
  pool.Submit([&] { task_thread = std::this_thread::get_id(); });
  EXPECT_EQ(task_thread, std::this_thread::get_id());
  EXPECT_EQ(pool.num_workers(), 0u);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::atomic<bool> different{false};
  const auto caller = std::this_thread::get_id();
  pool.Submit([&] {
    if (std::this_thread::get_id() != caller) different = true;
  });
  pool.WaitIdle();
  EXPECT_TRUE(different.load());
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(pool.busy_workers(), 0u);
  EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, IdleCallbackFires) {
  ThreadPool pool(2);
  std::atomic<int> idle_events{0};
  pool.SetIdleCallback([&idle_events] { idle_events.fetch_add(1); });
  for (int i = 0; i < 10; ++i) pool.Submit([] {});
  pool.WaitIdle();
  EXPECT_GT(idle_events.load(), 0);
}

}  // namespace
}  // namespace scanraw
