#include <gtest/gtest.h>

#include "io/file.h"
#include "scanraw/raw_reader.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string MakeLines(int n, int start = 0) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "line" + std::to_string(start + i) + "\n";
  }
  return out;
}

TEST(SequentialChunkerTest, SplitsIntoChunks) {
  const std::string path = TempPath("chunker1.txt");
  ASSERT_TRUE(WriteStringToFile(path, MakeLines(10)).ok());
  auto chunker = SequentialChunker::Open(path, 4);
  ASSERT_TRUE(chunker.ok());
  std::vector<size_t> rows;
  std::vector<uint64_t> offsets;
  uint64_t expected_index = 0;
  while (true) {
    auto chunk = (*chunker)->Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    EXPECT_EQ((*chunk)->chunk_index, expected_index++);
    rows.push_back((*chunk)->num_rows());
    offsets.push_back((*chunk)->file_offset);
  }
  EXPECT_EQ(rows, (std::vector<size_t>{4, 4, 2}));
  EXPECT_EQ(offsets[0], 0u);
  // Offsets are contiguous.
  auto size = GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ((*chunker)->chunks_produced(), 3u);
}

TEST(SequentialChunkerTest, ExactMultiple) {
  const std::string path = TempPath("chunker2.txt");
  ASSERT_TRUE(WriteStringToFile(path, MakeLines(8)).ok());
  auto chunker = SequentialChunker::Open(path, 4);
  ASSERT_TRUE(chunker.ok());
  int chunks = 0;
  while (true) {
    auto chunk = (*chunker)->Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    EXPECT_EQ((*chunk)->num_rows(), 4u);
    ++chunks;
  }
  EXPECT_EQ(chunks, 2);
}

TEST(SequentialChunkerTest, NoTrailingNewline) {
  const std::string path = TempPath("chunker3.txt");
  ASSERT_TRUE(WriteStringToFile(path, "a\nb\nc").ok());
  auto chunker = SequentialChunker::Open(path, 2);
  ASSERT_TRUE(chunker.ok());
  auto c1 = (*chunker)->Next();
  ASSERT_TRUE(c1.ok() && c1->has_value());
  EXPECT_EQ((*c1)->num_rows(), 2u);
  auto c2 = (*chunker)->Next();
  ASSERT_TRUE(c2.ok() && c2->has_value());
  EXPECT_EQ((*c2)->num_rows(), 1u);
  EXPECT_EQ((*c2)->line(0), "c");
  auto end = (*chunker)->Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(SequentialChunkerTest, EmptyFile) {
  const std::string path = TempPath("chunker4.txt");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto chunker = SequentialChunker::Open(path, 4);
  ASSERT_TRUE(chunker.ok());
  auto chunk = (*chunker)->Next();
  ASSERT_TRUE(chunk.ok());
  EXPECT_FALSE(chunk->has_value());
}

TEST(SequentialChunkerTest, ZeroChunkRowsRejected) {
  const std::string path = TempPath("chunker5.txt");
  ASSERT_TRUE(WriteStringToFile(path, "x\n").ok());
  EXPECT_TRUE(
      SequentialChunker::Open(path, 0).status().IsInvalidArgument());
}

TEST(SequentialChunkerTest, MissingFile) {
  EXPECT_TRUE(
      SequentialChunker::Open(TempPath("nope"), 4).status().IsIoError());
}

TEST(SequentialChunkerTest, LinesLongerThanReadBlock) {
  // Lines of ~2 MB exceed the 1 MB internal read block.
  const std::string path = TempPath("chunker6.txt");
  std::string data;
  for (int i = 0; i < 3; ++i) {
    data += std::string(2 << 20, static_cast<char>('a' + i));
    data += "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, data).ok());
  auto chunker = SequentialChunker::Open(path, 2);
  ASSERT_TRUE(chunker.ok());
  auto c1 = (*chunker)->Next();
  ASSERT_TRUE(c1.ok() && c1->has_value());
  EXPECT_EQ((*c1)->num_rows(), 2u);
  EXPECT_EQ((*c1)->line(0).size(), static_cast<size_t>(2 << 20));
  auto c2 = (*chunker)->Next();
  ASSERT_TRUE(c2.ok() && c2->has_value());
  EXPECT_EQ((*c2)->num_rows(), 1u);
}

TEST(ReadChunkAtTest, ReReadsRecordedChunk) {
  const std::string path = TempPath("reread.txt");
  const std::string content = MakeLines(6);
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  // Discover the layout first.
  auto chunker = SequentialChunker::Open(path, 3);
  ASSERT_TRUE(chunker.ok());
  std::vector<ChunkMetadata> layout;
  while (true) {
    auto chunk = (*chunker)->Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    ChunkMetadata meta;
    meta.chunk_index = (*chunk)->chunk_index;
    meta.raw_offset = (*chunk)->file_offset;
    meta.raw_size = (*chunk)->data.size();
    meta.num_rows = (*chunk)->num_rows();
    layout.push_back(meta);
  }
  ASSERT_EQ(layout.size(), 2u);

  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  auto second = ReadChunkAt(**file, layout[1]);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->chunk_index, 1u);
  EXPECT_EQ(second->num_rows(), 3u);
  EXPECT_EQ(second->line(0), "line3");
}

TEST(ReadChunkAtTest, RowMismatchIsCorruption) {
  const std::string path = TempPath("mismatch.txt");
  ASSERT_TRUE(WriteStringToFile(path, MakeLines(4)).ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  ChunkMetadata meta;
  meta.chunk_index = 0;
  meta.raw_offset = 0;
  meta.raw_size = 12;  // "line0\nline1\n"
  meta.num_rows = 5;   // wrong on purpose
  EXPECT_TRUE(ReadChunkAt(**file, meta).status().IsCorruption());
}

TEST(ReadChunkAtTest, TruncatedFileIsCorruption) {
  const std::string path = TempPath("trunc.txt");
  ASSERT_TRUE(WriteStringToFile(path, "ab\n").ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  ChunkMetadata meta;
  meta.chunk_index = 0;
  meta.raw_offset = 0;
  meta.raw_size = 100;  // beyond EOF
  meta.num_rows = 1;
  EXPECT_TRUE(ReadChunkAt(**file, meta).status().IsCorruption());
}

// Chunk extents recorded during discovery tile the file exactly.
class ChunkerTilingTest : public testing::TestWithParam<int> {};

TEST_P(ChunkerTilingTest, ExtentsTileFile) {
  const int lines = GetParam();
  const std::string path = TempPath("tiling" + std::to_string(lines) + ".txt");
  ASSERT_TRUE(WriteStringToFile(path, MakeLines(lines)).ok());
  auto chunker = SequentialChunker::Open(path, 7);
  ASSERT_TRUE(chunker.ok());
  uint64_t expected_offset = 0;
  size_t total_rows = 0;
  while (true) {
    auto chunk = (*chunker)->Next();
    ASSERT_TRUE(chunk.ok());
    if (!chunk->has_value()) break;
    EXPECT_EQ((*chunk)->file_offset, expected_offset);
    expected_offset += (*chunk)->data.size();
    total_rows += (*chunk)->num_rows();
  }
  auto size = GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(expected_offset, *size);
  EXPECT_EQ(total_rows, static_cast<size_t>(lines));
}

INSTANTIATE_TEST_SUITE_P(LineCounts, ChunkerTilingTest,
                         testing::Values(1, 6, 7, 8, 13, 14, 100));

}  // namespace
}  // namespace scanraw
