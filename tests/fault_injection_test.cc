#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "db/storage_manager.h"
#include "io/fault_injection.h"
#include "io/file.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string TestPath(const std::string& suffix) {
  std::string name = testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name();
  return TempPath("fault_" + name + "_" + suffix);
}

TEST(FaultInjectorTest, DeterministicForSeed) {
  FaultPlan plan;
  plan.seed = 77;
  plan.read_error_rate = 0.3;
  plan.short_read_rate = 0.3;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    auto fa = a.OnRead("x", 100);
    auto fb = b.OnRead("x", 100);
    EXPECT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind)) << i;
    EXPECT_EQ(fa.short_length, fb.short_length) << i;
  }
  EXPECT_EQ(a.counters().read_errors.load(), b.counters().read_errors.load());
  EXPECT_GT(a.counters().read_errors.load(), 0u);
  EXPECT_GT(a.counters().short_reads.load(), 0u);
}

TEST(FaultInjectorTest, PathSubstringFilters) {
  FaultPlan plan;
  plan.path_substring = ".db";
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.Matches("/tmp/table.db"));
  EXPECT_FALSE(injector.Matches("/tmp/table.csv"));
  FaultPlan all;
  EXPECT_TRUE(FaultInjector(all).Matches("/anything/at/all"));
}

TEST(FaultInjectionTest, InjectedReadErrorSurfacesThroughFactory) {
  const std::string path = TestPath("data");
  ASSERT_TRUE(WriteStringToFile(path, "hello world").ok());
  FaultPlan plan;
  plan.read_error_rate = 1.0;
  plan.error_errno = 5;  // EIO
  ScopedFaultInjection fault(plan);
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  char buf[16];
  auto n = (*file)->ReadAt(0, sizeof(buf), buf);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsIoError());
  EXPECT_GT(fault.injector()->counters().read_errors.load(), 0u);
}

TEST(FaultInjectionTest, ShortReadsReturnFewerBytes) {
  const std::string path = TestPath("data");
  ASSERT_TRUE(WriteStringToFile(path, "0123456789").ok());
  FaultPlan plan;
  plan.short_read_rate = 1.0;
  ScopedFaultInjection fault(plan);
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  char buf[10];
  auto n = (*file)->ReadAt(0, 10, buf);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_LT(*n, 10u);
  EXPECT_GT(fault.injector()->counters().short_reads.load(), 0u);
  // The shortened prefix is still real file data.
  EXPECT_EQ(std::memcmp(buf, "0123456789", *n), 0);
}

TEST(FaultInjectionTest, EintrRetriesAreCountedAndSucceed) {
  const std::string path = TestPath("data");
  ASSERT_TRUE(WriteStringToFile(path, "abc").ok());
  FaultPlan plan;
  plan.read_eintr_rate = 1.0;
  ScopedFaultInjection fault(plan);
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  char buf[3];
  auto n = (*file)->ReadAt(0, 3, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_GT(fault.injector()->counters().read_retries.load(), 0u);
}

TEST(FaultInjectionTest, AppendErrorLeavesTornPrefix) {
  const std::string path = TestPath("torn");
  FaultPlan plan;
  plan.append_error_rate = 1.0;
  plan.torn_fraction = 0.5;
  plan.error_errno = 28;  // ENOSPC
  ScopedFaultInjection fault(plan);
  auto file = WritableFile::Create(path);
  ASSERT_TRUE(file.ok());
  const std::string payload(100, 'x');
  Status s = (*file)->Append(payload);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fault.injector()->counters().append_errors.load(), 1u);
  EXPECT_EQ(fault.injector()->counters().torn_appends.load(), 1u);
  // Half the bytes reached the file — a torn tail, visible to bytes_written
  // so callers can resync their offsets.
  EXPECT_EQ((*file)->bytes_written(), 50u);
  ASSERT_TRUE((*file)->Close().ok());
  auto size = GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 50u);
}

TEST(FaultInjectionTest, SyncErrorPropagates) {
  const std::string path = TestPath("sync");
  FaultPlan plan;
  plan.sync_error_rate = 1.0;
  ScopedFaultInjection fault(plan);
  auto file = WritableFile::Create(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  Status s = (*file)->Sync();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIoError());
  EXPECT_GT(fault.injector()->counters().sync_errors.load(), 0u);
}

TEST(FaultInjectionTest, UninstalledInjectorIsInert) {
  const std::string path = TestPath("clean");
  {
    FaultPlan plan;
    plan.read_error_rate = 1.0;
    plan.append_error_rate = 1.0;
    ScopedFaultInjection fault(plan);
  }  // uninstalled here
  auto file = WritableFile::Create(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("fine").ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Close().ok());
  // Kill-points are no-ops without an armed injector.
  FaultKillPoint("not.armed");
}

TEST(AtomicWriteFileTest, ReplacesContentsAndLeavesNoTemp) {
  const std::string path = TestPath("state");
  ASSERT_TRUE(AtomicWriteFile(path, "first version").ok());
  EXPECT_EQ(*ReadFileToString(path), "first version");
  ASSERT_TRUE(AtomicWriteFile(path, "second version").ok());
  EXPECT_EQ(*ReadFileToString(path), "second version");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, FailedWriteKeepsOldFileIntact) {
  const std::string path = TestPath("state");
  ASSERT_TRUE(AtomicWriteFile(path, "precious").ok());
  {
    FaultPlan plan;
    plan.path_substring = ".tmp";
    plan.sync_error_rate = 1.0;
    ScopedFaultInjection fault(plan);
    Status s = AtomicWriteFile(path, "doomed replacement");
    EXPECT_FALSE(s.ok());
  }
  // The old file is untouched and the temp file was cleaned up.
  EXPECT_EQ(*ReadFileToString(path), "precious");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(AtomicWriteFileTest, FailedAppendKeepsOldFileIntact) {
  const std::string path = TestPath("state");
  ASSERT_TRUE(AtomicWriteFile(path, "precious").ok());
  {
    FaultPlan plan;
    plan.path_substring = ".tmp";
    plan.append_error_rate = 1.0;
    plan.error_errno = 28;  // ENOSPC
    ScopedFaultInjection fault(plan);
    Status s = AtomicWriteFile(path, "doomed replacement");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(*ReadFileToString(path), "precious");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

BinaryChunk MakeChunk(uint64_t index, std::vector<uint32_t> values) {
  BinaryChunk chunk(index);
  ColumnVector v(FieldType::kUint32);
  for (uint32_t x : values) v.AppendUint32(x);
  EXPECT_TRUE(chunk.AddColumn(0, std::move(v)).ok());
  return chunk;
}

TEST(FaultInjectionTest, StorageManagerResyncsOffsetAfterTornAppend) {
  const std::string path = TestPath("db");
  // Injection must be live when the storage writer is created: decorators are
  // attached at factory time (and pass through once the scope ends).
  std::optional<ScopedFaultInjection> fault;
  {
    FaultPlan plan;
    plan.append_error_rate = 1.0;
    plan.torn_fraction = 0.5;
    fault.emplace(plan);
  }
  auto storage = StorageManager::Create(path);
  ASSERT_TRUE(storage.ok());
  auto failed = (*storage)->WriteSegment(MakeChunk(0, {1, 2, 3, 4}), {0});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(fault->injector()->counters().torn_appends.load(), 1u);
  fault.reset();  // faults off; the wrapped writer now passes through
  // The torn prefix is on disk; the next segment must land after it, and
  // both its PageRef and checksum must line up when read back.
  EXPECT_GT((*storage)->bytes_written(), 0u);
  auto seg = (*storage)->WriteSegment(MakeChunk(7, {9, 8, 7}), {0});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg->page.offset, (*storage)->bytes_written() - seg->page.size);
  auto back = (*storage)->ReadSegment(seg->page);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->chunk_index(), 7u);
  EXPECT_EQ(back->column(0).AsUint32()[2], 7u);
  EXPECT_TRUE((*storage)->VerifySegment(seg->page).ok());
}

TEST(FaultInjectionTest, VerifySegmentRejectsOutOfBoundsAndGarbage) {
  const std::string path = TestPath("db");
  auto storage = StorageManager::Create(path);
  ASSERT_TRUE(storage.ok());
  auto seg = (*storage)->WriteSegment(MakeChunk(0, {1, 2}), {0});
  ASSERT_TRUE(seg.ok());
  EXPECT_TRUE((*storage)->VerifySegment(seg->page).ok());
  // Past EOF: phantom segment recorded by a catalog that outran storage.
  PageRef phantom{seg->page.offset + seg->page.size, 64};
  EXPECT_TRUE((*storage)->VerifySegment(phantom).IsCorruption());
  // Misaligned ref inside the file: checksum mismatch.
  PageRef misaligned{1, seg->page.size - 1};
  EXPECT_FALSE((*storage)->VerifySegment(misaligned).ok());
}

}  // namespace
}  // namespace scanraw
