#!/usr/bin/env python3
"""Unit tests for tools/scanraw_lint.py.

Each rule gets at least one fixture that must be caught and one that must
pass, plus a suppression-comment case. Fixtures are laid out in a temp
directory shaped like the repo (src/...) and linted via a subprocess with
SCANRAW_LINT_ROOT pointing at the temp root.
"""

import os
import subprocess
import sys
import tempfile
import unittest

LINT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "tools", "scanraw_lint.py")


class LintTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="scanraw_lint_")
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "src", "io"))

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return path

    def lint(self, *paths):
        env = dict(os.environ, SCANRAW_LINT_ROOT=self.root)
        proc = subprocess.run(
            [sys.executable, LINT] + [os.path.join(self.root, p)
                                      for p in paths],
            capture_output=True, text=True, env=env)
        return proc.returncode, proc.stdout

    # ---- raw-mutex ----

    def test_raw_mutex_caught(self):
        self.write("src/io/foo.cc",
                   "#include <mutex>\nstd::mutex mu_;\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[raw-mutex]", out)

    def test_raw_lock_guard_caught(self):
        self.write("src/io/foo.cc",
                   "void F() { std::lock_guard<std::mutex> l(mu_); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[raw-mutex]", out)

    def test_wrapper_types_pass(self):
        self.write("src/io/foo.cc",
                   'Mutex mu_{LockRank::kLeaf, "Foo.mu"};\nCondVar cv_;\n'
                   "void F() { MutexLock lock(mu_); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_raw_mutex_exempt_header(self):
        self.write("src/common/thread_annotations.h",
                   "#ifndef SCANRAW_COMMON_THREAD_ANNOTATIONS_H_\n"
                   "#define SCANRAW_COMMON_THREAD_ANNOTATIONS_H_\n"
                   "#include <mutex>\nclass Mutex { std::mutex mu_; };\n"
                   "#endif  // SCANRAW_COMMON_THREAD_ANNOTATIONS_H_\n")
        code, out = self.lint("src/common/thread_annotations.h")
        self.assertEqual(code, 0, out)

    def test_raw_mutex_suppressed(self):
        self.write("src/io/foo.cc",
                   "std::mutex mu_;  // scanraw-lint: allow(raw-mutex)\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_raw_mutex_in_comment_passes(self):
        self.write("src/io/foo.cc",
                   "// wraps std::mutex under the hood\n"
                   'Mutex mu_{LockRank::kLeaf, "Foo.mu"};\n')
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_raw_mutex_outside_src_passes(self):
        self.write("tests/foo.cc", "std::mutex mu_;\n")
        code, out = self.lint("tests/foo.cc")
        self.assertEqual(code, 0, out)

    # ---- unchecked-value ----

    def test_unchecked_value_caught(self):
        self.write("src/io/foo.cc",
                   "int F() {\n"
                   "  auto r = Load();\n"
                   "  return r.value();\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[unchecked-value]", out)

    def test_checked_value_passes(self):
        self.write("src/io/foo.cc",
                   "int F() {\n"
                   "  auto r = Load();\n"
                   "  if (!r.ok()) return -1;\n"
                   "  return r.value();\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_ok_in_previous_function_does_not_count(self):
        self.write("src/io/foo.cc",
                   "int G() {\n"
                   "  auto a = Load();\n"
                   "  if (!a.ok()) return -1;\n"
                   "  return 0;\n"
                   "}\n"
                   "int F() {\n"
                   "  auto r = Load();\n"
                   "  return r.value();\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1, out)
        self.assertIn("[unchecked-value]", out)

    def test_unchecked_value_suppressed(self):
        self.write("src/io/foo.cc",
                   "int F() {\n"
                   "  // scanraw-lint: allow(unchecked-value)\n"
                   "  return Load().value();\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_pointer_value_accessor_passes(self):
        # Counter::value() via pointer is an accessor, not a Result.
        self.write("src/io/foo.cc",
                   "uint64_t F(Counter* c) { return c->value(); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    # ---- sleep-in-src ----

    def test_sleep_caught(self):
        self.write("src/io/foo.cc",
                   "void F() {\n"
                   "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[sleep-in-src]", out)

    def test_sleep_in_test_file_passes(self):
        self.write("src/io/foo_test.cc",
                   "void F() {\n"
                   "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                   "}\n")
        code, out = self.lint("src/io/foo_test.cc")
        self.assertEqual(code, 0, out)

    def test_sleep_suppressed(self):
        self.write("src/io/foo.cc",
                   "void F() {\n"
                   "  // scanraw-lint: allow(sleep-in-src)\n"
                   "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    # ---- include-guard ----

    def good_header(self):
        return ("#ifndef SCANRAW_IO_FOO_H_\n"
                "#define SCANRAW_IO_FOO_H_\n"
                "void F();\n"
                "#endif  // SCANRAW_IO_FOO_H_\n")

    def test_good_guard_passes(self):
        self.write("src/io/foo.h", self.good_header())
        code, out = self.lint("src/io/foo.h")
        self.assertEqual(code, 0, out)

    def test_pragma_once_caught(self):
        self.write("src/io/foo.h", "#pragma once\nvoid F();\n")
        code, out = self.lint("src/io/foo.h")
        self.assertEqual(code, 1)
        self.assertIn("[include-guard]", out)

    def test_missing_guard_caught(self):
        self.write("src/io/foo.h", "void F();\n")
        code, out = self.lint("src/io/foo.h")
        self.assertEqual(code, 1)
        self.assertIn("no include guard", out)

    def test_wrong_guard_token_caught(self):
        self.write("src/io/foo.h",
                   "#ifndef WRONG_H_\n#define WRONG_H_\nvoid F();\n"
                   "#endif  // WRONG_H_\n")
        code, out = self.lint("src/io/foo.h")
        self.assertEqual(code, 1)
        self.assertIn("expected SCANRAW_IO_FOO_H_", out)

    def test_mismatched_define_caught(self):
        self.write("src/io/foo.h",
                   "#ifndef SCANRAW_IO_FOO_H_\n#define OTHER_H_\n"
                   "void F();\n#endif\n")
        code, out = self.lint("src/io/foo.h")
        self.assertEqual(code, 1)
        self.assertIn("[include-guard]", out)

    def test_endif_without_comment_caught(self):
        self.write("src/io/foo.h",
                   "#ifndef SCANRAW_IO_FOO_H_\n#define SCANRAW_IO_FOO_H_\n"
                   "void F();\n#endif\n")
        code, out = self.lint("src/io/foo.h")
        self.assertEqual(code, 1)
        self.assertIn("#endif", out)

    # ---- byte-loop ----

    def byte_loop_snippet(self):
        return ("void F(const char* d, size_t n) {\n"
                "  for (size_t i = 0; i < n; ++i) {\n"
                "    if (d[i] == '\\n') Mark(i);\n"
                "  }\n"
                "}\n")

    def test_byte_loop_caught_in_format(self):
        self.write("src/format/foo.cc", self.byte_loop_snippet())
        code, out = self.lint("src/format/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[byte-loop]", out)

    def test_byte_loop_caught_in_scanraw(self):
        self.write("src/scanraw/foo.cc", self.byte_loop_snippet())
        code, out = self.lint("src/scanraw/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[byte-loop]", out)

    def test_byte_loop_outside_hot_dirs_passes(self):
        self.write("src/io/foo.cc", self.byte_loop_snippet())
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_byte_loop_in_test_file_passes(self):
        self.write("src/format/foo_test.cc", self.byte_loop_snippet())
        code, out = self.lint("src/format/foo_test.cc")
        self.assertEqual(code, 0, out)

    def test_for_without_char_compare_passes(self):
        self.write("src/format/foo.cc",
                   "void F(size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) Push(i);\n"
                   "}\n")
        code, out = self.lint("src/format/foo.cc")
        self.assertEqual(code, 0, out)

    def test_char_compare_outside_window_passes(self):
        # The comparison is 5 lines below the for-header — out of range.
        self.write("src/format/foo.cc",
                   "void F(const char* d, size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    A();\n"
                   "    B();\n"
                   "    C();\n"
                   "    D();\n"
                   "    if (d[i] == 'x') Mark(i);\n"
                   "  }\n"
                   "}\n")
        code, out = self.lint("src/format/foo.cc")
        self.assertEqual(code, 0, out)

    def test_byte_loop_suppressed_on_header(self):
        self.write("src/format/foo.cc",
                   "void F(const char* d, size_t n) {\n"
                   "  // scanraw-lint: allow(byte-loop)\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    if (d[i] == '\\n') Mark(i);\n"
                   "  }\n"
                   "}\n")
        code, out = self.lint("src/format/foo.cc")
        self.assertEqual(code, 0, out)

    def test_byte_loop_suppressed_on_compare_line(self):
        self.write("src/format/foo.cc",
                   "void F(const char* d, size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    if (d[i] == '\\n') Mark(i);"
                   "  // scanraw-lint: allow(byte-loop)\n"
                   "  }\n"
                   "}\n")
        code, out = self.lint("src/format/foo.cc")
        self.assertEqual(code, 0, out)

    def test_char_compare_in_comment_passes(self):
        self.write("src/format/foo.cc",
                   "void F(const char* d, size_t n) {\n"
                   "  for (size_t i = 0; i < n; ++i) {\n"
                   "    // stops when d[i] == '\\n' is seen\n"
                   "    Push(d, i);\n"
                   "  }\n"
                   "}\n")
        code, out = self.lint("src/format/foo.cc")
        self.assertEqual(code, 0, out)

    # ---- state-file-write ----

    def test_state_file_write_caught(self):
        self.write("src/db/foo.cc",
                   "Status Save() {\n"
                   "  return WriteStringToFile(path_, Serialize());\n"
                   "}\n")
        code, out = self.lint("src/db/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[state-file-write]", out)
        self.assertIn("AtomicWriteFile", out)

    def test_atomic_write_passes(self):
        self.write("src/db/foo.cc",
                   "Status Save() {\n"
                   "  return AtomicWriteFile(path_, Serialize());\n"
                   "}\n")
        code, out = self.lint("src/db/foo.cc")
        self.assertEqual(code, 0, out)

    def test_state_file_write_exempt_in_file_cc(self):
        self.write("src/io/file.cc",
                   "Status WriteStringToFile(const std::string& p,\n"
                   "                         std::string_view c) {\n"
                   "  return Status::OK();\n"
                   "}\n")
        code, out = self.lint("src/io/file.cc")
        self.assertEqual(code, 0, out)

    def test_state_file_write_in_test_file_passes(self):
        self.write("src/db/foo_test.cc",
                   "void F() { WriteStringToFile(p, c); }\n")
        code, out = self.lint("src/db/foo_test.cc")
        self.assertEqual(code, 0, out)

    def test_state_file_write_suppressed(self):
        self.write("src/db/foo.cc",
                   "Status Dump() {\n"
                   "  // scratch output, no durability needed\n"
                   "  // scanraw-lint: allow(state-file-write)\n"
                   "  return WriteStringToFile(path_, Serialize());\n"
                   "}\n")
        code, out = self.lint("src/db/foo.cc")
        self.assertEqual(code, 0, out)

    def test_state_file_write_in_comment_passes(self):
        self.write("src/db/foo.cc",
                   "// unlike WriteStringToFile(, this fsyncs and renames\n"
                   "Status Save() { return AtomicWriteFile(p, c); }\n")
        code, out = self.lint("src/db/foo.cc")
        self.assertEqual(code, 0, out)

    # ---- flight-record-path ----

    def record_fn(self, body):
        return ("void FlightRecorder::Record(FlightEvent e, uint64_t a) {\n"
                f"  {body}\n"
                "}\n")

    def test_flight_record_mutex_caught(self):
        self.write("src/obs/flight_recorder.cc",
                   self.record_fn("MutexLock lock(mu_);"))
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 1)
        self.assertIn("[flight-record-path]", out)
        self.assertIn("mutex acquisition", out)

    def test_flight_record_io_caught(self):
        self.write("src/obs/flight_recorder.cc",
                   self.record_fn("write(2, buf, n);"))
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 1)
        self.assertIn("IO call", out)

    def test_flight_record_allocation_caught(self):
        self.write("src/obs/flight_recorder.cc",
                   self.record_fn("auto* s = new Slot();"))
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 1)
        self.assertIn("heap allocation", out)

    def test_flight_record_free_function_caught(self):
        self.write("src/obs/flight_recorder.h",
                   "#ifndef SCANRAW_OBS_FLIGHT_RECORDER_H_\n"
                   "#define SCANRAW_OBS_FLIGHT_RECORDER_H_\n"
                   "inline void FlightRecord(FlightEvent e) {\n"
                   "  std::fprintf(stderr, \"x\");\n"
                   "}\n"
                   "#endif  // SCANRAW_OBS_FLIGHT_RECORDER_H_\n")
        code, out = self.lint("src/obs/flight_recorder.h")
        self.assertEqual(code, 1)
        self.assertIn("[flight-record-path]", out)

    def test_flight_record_atomic_stores_pass(self):
        self.write("src/obs/flight_recorder.cc",
                   self.record_fn("slot.a.store(a, std::memory_order_relaxed);"))
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 0, out)

    def test_flight_record_forbidden_outside_record_passes(self):
        # Dump paths may do IO; only Record* bodies are constrained.
        self.write("src/obs/flight_recorder.cc",
                   "void FlightRecorder::DumpTo(int fd) const {\n"
                   "  write(fd, buf, n);\n"
                   "}\n")
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 0, out)

    def test_flight_record_other_files_exempt(self):
        self.write("src/obs/telemetry.cc",
                   "void Telemetry::RecordSample() {\n"
                   "  MutexLock lock(mu_);\n"
                   "}\n")
        code, out = self.lint("src/obs/telemetry.cc")
        self.assertEqual(code, 0, out)

    def test_flight_record_declaration_ignored(self):
        self.write("src/obs/flight_recorder.cc",
                   "void Record(FlightEvent e, uint64_t a);\n"
                   "void F() { write(2, buf, n); }\n")
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 0, out)

    def test_flight_record_suppressed(self):
        self.write("src/obs/flight_recorder.cc",
                   "void FlightRecorder::Record(FlightEvent e) {\n"
                   "  // scanraw-lint: allow(flight-record-path)\n"
                   "  write(2, buf, n);\n"
                   "}\n")
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 0, out)

    def test_flight_record_mention_in_comment_passes(self):
        self.write("src/obs/flight_recorder.cc",
                   "void FlightRecorder::Record(FlightEvent e) {\n"
                   "  // never calls write( or malloc( here\n"
                   "  slot.a.store(1);\n"
                   "}\n")
        code, out = self.lint("src/obs/flight_recorder.cc")
        self.assertEqual(code, 0, out)

    # ---- stderr-write ----

    def test_stderr_fprintf_caught(self):
        self.write("src/io/foo.cc",
                   "void F() { fprintf(stderr, \"oops\\n\"); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[stderr-write]", out)

    def test_stderr_std_fprintf_caught(self):
        self.write("src/io/foo.cc",
                   "void F() { std::fprintf(stderr, \"oops\\n\"); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[stderr-write]", out)

    def test_stderr_cerr_caught(self):
        self.write("src/io/foo.cc",
                   "void F() { std::cerr << \"oops\"; }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[stderr-write]", out)

    def test_stderr_perror_caught(self):
        self.write("src/io/foo.cc", "void F() { perror(\"open\"); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[stderr-write]", out)

    def test_stderr_exempt_in_log_cc(self):
        self.write("src/obs/log.cc",
                   "void Emit() { std::fprintf(stderr, \"line\\n\"); }\n")
        code, out = self.lint("src/obs/log.cc")
        self.assertEqual(code, 0, out)

    def test_stderr_in_test_file_passes(self):
        self.write("src/io/foo_test.cc",
                   "void F() { fprintf(stderr, \"debug\\n\"); }\n")
        code, out = self.lint("src/io/foo_test.cc")
        self.assertEqual(code, 0, out)

    def test_stderr_outside_src_passes(self):
        self.write("tools/foo.cc",
                   "void F() { fprintf(stderr, \"usage\\n\"); }\n")
        code, out = self.lint("tools/foo.cc")
        self.assertEqual(code, 0, out)

    def test_stderr_suppressed(self):
        self.write("src/io/foo.cc",
                   "void F() {\n"
                   "  // scanraw-lint: allow(stderr-write)\n"
                   "  fprintf(stderr, \"pre-logging bootstrap path\\n\");\n"
                   "}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_stderr_mention_in_comment_passes(self):
        self.write("src/io/foo.cc",
                   "// diagnostics go through LOG_*, never fprintf(stderr\n"
                   "void F() { LOG_WARN(\"oops\"); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_stdout_fprintf_passes(self):
        self.write("src/io/foo.cc",
                   "void F() { fprintf(stdout, \"report\\n\"); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    # ---- driver behavior ----

    def test_directory_walk_and_multiple_findings(self):
        self.write("src/io/a.cc", "std::mutex a;\n")
        self.write("src/io/b.cc", "std::mutex b;\n")
        code, out = self.lint("src")
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[raw-mutex]"), 2, out)

    # ---- mutex-rank ----

    def test_unranked_mutex_member_caught(self):
        self.write("src/io/foo.cc", "class Foo {\n  Mutex mu_;\n};\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[mutex-rank]", out)

    def test_unranked_mutable_mutex_member_caught(self):
        self.write("src/io/foo.cc",
                   "class Foo {\n  mutable Mutex mu_;\n};\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[mutex-rank]", out)

    def test_ranked_mutex_member_passes(self):
        self.write("src/io/foo.cc",
                   "class Foo {\n"
                   '  mutable Mutex mu_{LockRank::kLeaf, "Foo.mu"};\n'
                   "};\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_ranked_mutex_continuation_line_passes(self):
        self.write("src/io/foo.cc",
                   "class Foo {\n  mutable Mutex mu_{\n"
                   '      LockRank::kLeaf, "Foo.mu"};\n'
                   "};\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_mutex_pointer_and_mutexlock_pass(self):
        self.write("src/io/foo.cc",
                   "Mutex* borrowed;\nMutex& ref = other;\n"
                   "void F() { MutexLock lock(*borrowed); }\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_mutex_rank_suppressed(self):
        self.write("src/io/foo.cc",
                   "class Foo {\n"
                   "  Mutex mu_;  // scanraw-lint: allow(mutex-rank)\n"
                   "};\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_mutex_rank_not_enforced_in_tests(self):
        self.write("tests/foo_test.cc", "Mutex mu_;\n")
        code, out = self.lint("tests/foo_test.cc")
        self.assertEqual(code, 0, out)

    def test_wrapper_header_exempt_from_mutex_rank(self):
        self.write("src/common/thread_annotations.h",
                   "#ifndef SCANRAW_COMMON_THREAD_ANNOTATIONS_H_\n"
                   "#define SCANRAW_COMMON_THREAD_ANNOTATIONS_H_\n"
                   "class Mutex {};\n"
                   "#endif  // SCANRAW_COMMON_THREAD_ANNOTATIONS_H_\n")
        code, out = self.lint("src/common/thread_annotations.h")
        self.assertEqual(code, 0, out)

    # ---- condvar-wait-loop ----

    def test_wait_under_if_caught(self):
        self.write("src/io/foo.cc",
                   "void F() {\n  MutexLock lock(mu_);\n"
                   "  if (!ready_) {\n    cv_.Wait(lock);\n  }\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[condvar-wait-loop]", out)

    def test_bare_wait_caught(self):
        self.write("src/io/foo.cc",
                   "void F() {\n  MutexLock lock(mu_);\n"
                   "  cv_.WaitFor(lock, timeout);\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 1)
        self.assertIn("[condvar-wait-loop]", out)

    def test_wait_in_while_loop_passes(self):
        self.write("src/io/foo.cc",
                   "void F() {\n  MutexLock lock(mu_);\n"
                   "  while (!ready_) {\n    cv_.Wait(lock);\n  }\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_wait_same_line_while_passes(self):
        self.write("src/io/foo.cc",
                   "void F() {\n  MutexLock lock(mu_);\n"
                   "  while (!ready_) cv_.Wait(lock);\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_wait_under_if_inside_outer_loop_passes(self):
        # The watchdog pattern: the predicate re-check sits one block out.
        self.write("src/io/foo.cc",
                   "void F() {\n  for (;;) {\n    {\n"
                   "      MutexLock lock(mu_);\n"
                   "      if (!stop_) {\n"
                   "        cv_.WaitFor(lock, interval);\n      }\n"
                   "      if (stop_) return;\n    }\n    Tick();\n  }\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_wait_for_writes_name_passes(self):
        # Longer method names (WaitForWrites) are not CondVar waits.
        self.write("src/io/foo.cc",
                   "void F() {\n  op->WaitForWrites();\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_condvar_wait_loop_suppressed(self):
        self.write("src/io/foo.cc",
                   "void F() {\n"
                   "  // scanraw-lint: allow(condvar-wait-loop)\n"
                   "  cv_.Wait(lock);\n}\n")
        code, out = self.lint("src/io/foo.cc")
        self.assertEqual(code, 0, out)

    def test_clean_tree_exits_zero(self):
        self.write("src/io/a.cc", 'Mutex a{LockRank::kLeaf, "a"};\n')
        self.write("src/io/foo.h", self.good_header())
        code, out = self.lint("src")
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
