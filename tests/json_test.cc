#include <gtest/gtest.h>

#include "datagen/jsonl_generator.h"
#include "format/json_tokenizer.h"
#include "format/parser.h"
#include "io/file.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/json_" + name;
}

std::string Field(const TextChunk& chunk, const PositionalMap& map, size_t r,
                  size_t f) {
  return std::string(chunk.data.substr(
      map.FieldStart(r, f), map.FieldEnd(r, f) - map.FieldStart(r, f)));
}

TEST(JsonTokenizerTest, FlatObjects) {
  Schema schema(std::vector<ColumnDef>{{"id", FieldType::kUint32},
                                       {"name", FieldType::kString},
                                       {"score", FieldType::kDouble}});
  TextChunk chunk = MakeTextChunk(
      "{\"id\":1,\"name\":\"alice\",\"score\":2.5}\n"
      "{\"id\":2,\"name\":\"bob\",\"score\":0.25}\n");
  auto map = TokenizeJsonChunk(chunk, schema);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_TRUE(map->explicit_ends());
  EXPECT_EQ(Field(chunk, *map, 0, 0), "1");
  EXPECT_EQ(Field(chunk, *map, 0, 1), "alice");
  EXPECT_EQ(Field(chunk, *map, 0, 2), "2.5");
  EXPECT_EQ(Field(chunk, *map, 1, 1), "bob");
}

TEST(JsonTokenizerTest, MembersInAnyOrderAndExtrasIgnored) {
  Schema schema(std::vector<ColumnDef>{{"a", FieldType::kUint32},
                                       {"b", FieldType::kUint32}});
  TextChunk chunk = MakeTextChunk(
      "{\"b\": 2, \"junk\": \"x\", \"a\": 1}\n"
      "{ \"a\" : 3 , \"b\" : 4 }\n");
  auto map = TokenizeJsonChunk(chunk, schema);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(Field(chunk, *map, 0, 0), "1");
  EXPECT_EQ(Field(chunk, *map, 0, 1), "2");
  EXPECT_EQ(Field(chunk, *map, 1, 0), "3");
  EXPECT_EQ(Field(chunk, *map, 1, 1), "4");
}

TEST(JsonTokenizerTest, ParseSharedWithDelimitedPath) {
  Schema schema(std::vector<ColumnDef>{{"n", FieldType::kInt64},
                                       {"s", FieldType::kString}});
  TextChunk chunk = MakeTextChunk("{\"n\":-42,\"s\":\"hello\"}\n");
  auto map = TokenizeJsonChunk(chunk, schema);
  ASSERT_TRUE(map.ok());
  auto binary = ParseChunk(chunk, *map, schema, ParseOptions{});
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(binary->column(0).AsInt64()[0], -42);
  EXPECT_EQ(binary->column(1).StringAt(0), "hello");
}

TEST(JsonTokenizerTest, Errors) {
  Schema schema(std::vector<ColumnDef>{{"a", FieldType::kUint32}});
  auto tokenize = [&](const std::string& line) {
    TextChunk chunk = MakeTextChunk(line + "\n");
    return TokenizeJsonChunk(chunk, schema).status();
  };
  EXPECT_TRUE(tokenize("not json").IsCorruption());
  EXPECT_TRUE(tokenize("{\"b\":1}").IsCorruption());        // missing member
  EXPECT_TRUE(tokenize("{\"a\":1").IsCorruption());         // unterminated
  EXPECT_TRUE(tokenize("{\"a\":}").IsCorruption());         // empty value
  EXPECT_TRUE(tokenize("{\"a\":1} x").IsCorruption());      // trailing data
  EXPECT_TRUE(tokenize("{\"a\":1 \"b\":2}").IsCorruption());  // missing comma
  EXPECT_EQ(tokenize("{\"a\":{\"x\":1}}").code(),
            StatusCode::kUnimplemented);  // nested
  EXPECT_EQ(tokenize("{\"a\":\"x\\n\"}").code(),
            StatusCode::kUnimplemented);  // escapes
}

TEST(JsonTokenizerTest, DuplicateKeyLastWins) {
  Schema schema(std::vector<ColumnDef>{{"a", FieldType::kUint32}});
  TextChunk chunk = MakeTextChunk("{\"a\":1,\"a\":2}\n");
  auto map = TokenizeJsonChunk(chunk, schema);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(Field(chunk, *map, 0, 0), "2");
}

TEST(JsonlGeneratorTest, MatchesCsvGroundTruth) {
  CsvSpec spec;
  spec.num_rows = 500;
  spec.num_columns = 4;
  spec.seed = 9;
  auto csv_info = GenerateCsvFile(TempPath("twin.csv"), spec);
  auto json_info = GenerateJsonlFile(TempPath("twin.jsonl"), spec);
  ASSERT_TRUE(csv_info.ok());
  ASSERT_TRUE(json_info.ok());
  // Identical value stream -> identical aggregates.
  EXPECT_EQ(csv_info->total_sum, json_info->total_sum);
  EXPECT_EQ(csv_info->column_sums, json_info->column_sums);
}

// End to end: ScanRaw over a JSONL file with speculative loading converges
// like the CSV path and produces identical results.
TEST(JsonScanRawTest, FullPipelineOverJsonl) {
  CsvSpec spec;
  spec.num_rows = 4000;
  spec.num_columns = 6;
  spec.seed = 13;
  const std::string path = TempPath("pipeline.jsonl");
  auto info = GenerateJsonlFile(path, spec);
  ASSERT_TRUE(info.ok());

  ScanRawManager::Config config;
  config.db_path = TempPath("pipeline.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.raw_format = RawFormat::kJsonLines;
  options.num_workers = 2;
  options.chunk_rows = 500;
  options.cache_capacity_chunks = 4;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("j", path, CsvSchema(spec), options).ok());

  QuerySpec query;
  for (size_t c = 0; c < spec.num_columns; ++c) {
    query.sum_columns.push_back(c);
  }
  for (int q = 0; q < 6; ++q) {
    auto result = (*manager)->Query("j", query);
    ASSERT_TRUE(result.ok()) << "query " << q << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->total_sum, info->total_sum) << "query " << q;
    EXPECT_EQ(result->rows_scanned, spec.num_rows);
  }
  ScanRaw* op = (*manager)->GetOperator("j");
  if (op != nullptr) op->WaitForWrites();
  // Speculative loading converged over the sequence.
  EXPECT_DOUBLE_EQ((*manager)->catalog()->GetTable("j")->LoadedFraction(),
                   1.0);
}

TEST(JsonScanRawTest, MapCacheWorksForJson) {
  CsvSpec spec;
  spec.num_rows = 1000;
  spec.num_columns = 3;
  const std::string path = TempPath("mapcache.jsonl");
  auto info = GenerateJsonlFile(path, spec);
  ASSERT_TRUE(info.ok());
  ScanRawManager::Config config;
  config.db_path = TempPath("mapcache.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.raw_format = RawFormat::kJsonLines;
  options.policy = LoadPolicy::kExternalTables;
  options.cache_capacity_chunks = 0;
  options.cache_positional_maps = true;
  options.num_workers = 2;
  options.chunk_rows = 250;
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("j", path, CsvSchema(spec), options).ok());
  ScanRaw op("j", (*manager)->catalog(), (*manager)->storage(),
             (*manager)->arbiter(), nullptr, options);
  QuerySpec query;
  query.sum_columns = {0, 1, 2};
  ASSERT_TRUE(op.ExecuteQuery(query).ok());
  const int64_t after_first = op.profile().tokenize_time.intervals();
  auto r2 = op.ExecuteQuery(query);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->total_sum, info->total_sum);
  // JSON maps are always complete, so the second scan reuses all of them.
  EXPECT_EQ(op.profile().tokenize_time.intervals(), after_first);
}

TEST(JsonScanRawTest, MalformedRowSurfacesCorruption) {
  const std::string path = TempPath("bad.jsonl");
  ASSERT_TRUE(WriteStringToFile(
                  path, "{\"C0\":1,\"C1\":2}\n{\"C0\":oops}\n")
                  .ok());
  ScanRawManager::Config config;
  config.db_path = TempPath("bad.db");
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options;
  options.raw_format = RawFormat::kJsonLines;
  ASSERT_TRUE((*manager)
                  ->RegisterRawFile("j", path, Schema::AllUint32(2), options)
                  .ok());
  QuerySpec query;
  query.sum_columns = {0, 1};
  auto result = (*manager)->Query("j", query);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

}  // namespace
}  // namespace scanraw
