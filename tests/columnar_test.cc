#include <gtest/gtest.h>

#include <algorithm>

#include "columnar/binary_chunk.h"
#include "columnar/chunk_serde.h"
#include "columnar/chunk_sort.h"
#include "columnar/column_vector.h"
#include "common/random.h"

namespace scanraw {
namespace {

TEST(ColumnVectorTest, Uint32AppendAndRead) {
  ColumnVector v(FieldType::kUint32);
  v.AppendUint32(1);
  v.AppendUint32(42);
  v.AppendUint32(4294967295u);
  ASSERT_EQ(v.size(), 3u);
  auto span = v.AsUint32();
  EXPECT_EQ(span[0], 1u);
  EXPECT_EQ(span[1], 42u);
  EXPECT_EQ(span[2], 4294967295u);
  EXPECT_EQ(v.NumericAt(2), 4294967295);
}

TEST(ColumnVectorTest, Int64AndDouble) {
  ColumnVector a(FieldType::kInt64);
  a.AppendInt64(-5);
  a.AppendInt64(1ll << 40);
  EXPECT_EQ(a.AsInt64()[0], -5);
  EXPECT_EQ(a.NumericAt(1), 1ll << 40);

  ColumnVector b(FieldType::kDouble);
  b.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(b.AsDouble()[0], 2.5);
  EXPECT_EQ(b.NumericAt(0), 2);
}

TEST(ColumnVectorTest, Strings) {
  ColumnVector v(FieldType::kString);
  v.AppendString("alpha");
  v.AppendString("");
  v.AppendString("gamma");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.StringAt(0), "alpha");
  EXPECT_EQ(v.StringAt(1), "");
  EXPECT_EQ(v.StringAt(2), "gamma");
  EXPECT_GT(v.MemoryBytes(), 10u);
}

TEST(ColumnVectorTest, EmptyVector) {
  ColumnVector v(FieldType::kUint32);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.AsUint32().size(), 0u);
}

TEST(BinaryChunkTest, AddAndAccessColumns) {
  BinaryChunk chunk(7);
  ColumnVector c0(FieldType::kUint32);
  c0.AppendUint32(10);
  c0.AppendUint32(20);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(c0)).ok());
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_TRUE(chunk.HasColumn(0));
  EXPECT_FALSE(chunk.HasColumn(1));
  EXPECT_EQ(chunk.chunk_index(), 7u);
  EXPECT_EQ(chunk.column(0).AsUint32()[1], 20u);
}

TEST(BinaryChunkTest, RowCountMismatchRejected) {
  BinaryChunk chunk(0);
  ColumnVector c0(FieldType::kUint32);
  c0.AppendUint32(1);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(c0)).ok());
  ColumnVector c1(FieldType::kUint32);
  c1.AppendUint32(1);
  c1.AppendUint32(2);
  EXPECT_TRUE(chunk.AddColumn(1, std::move(c1)).IsInvalidArgument());
}

TEST(BinaryChunkTest, MergeColumns) {
  BinaryChunk a(3), b(3);
  ColumnVector c0(FieldType::kUint32);
  c0.AppendUint32(1);
  ASSERT_TRUE(a.AddColumn(0, std::move(c0)).ok());
  ColumnVector c1(FieldType::kInt64);
  c1.AppendInt64(-9);
  ASSERT_TRUE(b.AddColumn(1, std::move(c1)).ok());
  ASSERT_TRUE(a.MergeColumnsFrom(b).ok());
  EXPECT_TRUE(a.HasColumn(0));
  EXPECT_TRUE(a.HasColumn(1));
  EXPECT_EQ(a.column(1).AsInt64()[0], -9);
}

TEST(BinaryChunkTest, MergeDifferentIndexRejected) {
  BinaryChunk a(1), b(2);
  EXPECT_TRUE(a.MergeColumnsFrom(b).IsInvalidArgument());
}

TEST(BinaryChunkTest, MergeKeepsExistingColumn) {
  BinaryChunk a(0), b(0);
  ColumnVector av(FieldType::kUint32);
  av.AppendUint32(111);
  ASSERT_TRUE(a.AddColumn(0, std::move(av)).ok());
  ColumnVector bv(FieldType::kUint32);
  bv.AppendUint32(222);
  ASSERT_TRUE(b.AddColumn(0, std::move(bv)).ok());
  ASSERT_TRUE(a.MergeColumnsFrom(b).ok());
  EXPECT_EQ(a.column(0).AsUint32()[0], 111u);
}

BinaryChunk MakeMixedChunk(uint64_t index, size_t rows) {
  Random rng(index + 1);
  BinaryChunk chunk(index);
  ColumnVector u(FieldType::kUint32), i(FieldType::kInt64),
      d(FieldType::kDouble), s(FieldType::kString);
  for (size_t r = 0; r < rows; ++r) {
    u.AppendUint32(rng.NextUint32());
    i.AppendInt64(static_cast<int64_t>(rng.NextUint64()));
    d.AppendDouble(rng.NextDouble() * 1000.0);
    std::string str;
    for (uint64_t k = rng.Uniform(12); k > 0; --k) {
      str.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    s.AppendString(str);
  }
  EXPECT_TRUE(chunk.AddColumn(0, std::move(u)).ok());
  EXPECT_TRUE(chunk.AddColumn(1, std::move(i)).ok());
  EXPECT_TRUE(chunk.AddColumn(5, std::move(d)).ok());
  EXPECT_TRUE(chunk.AddColumn(9, std::move(s)).ok());
  return chunk;
}

void ExpectChunksEqual(const BinaryChunk& a, const BinaryChunk& b) {
  ASSERT_EQ(a.chunk_index(), b.chunk_index());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.ColumnIds(), b.ColumnIds());
  for (size_t col : a.ColumnIds()) {
    const ColumnVector& va = a.column(col);
    const ColumnVector& vb = b.column(col);
    ASSERT_EQ(va.type(), vb.type());
    ASSERT_EQ(va.size(), vb.size());
    for (size_t r = 0; r < va.size(); ++r) {
      if (va.type() == FieldType::kString) {
        EXPECT_EQ(va.StringAt(r), vb.StringAt(r));
      } else if (va.type() == FieldType::kDouble) {
        EXPECT_DOUBLE_EQ(va.AsDouble()[r], vb.AsDouble()[r]);
      } else {
        EXPECT_EQ(va.NumericAt(r), vb.NumericAt(r));
      }
    }
  }
}

TEST(ChunkSerdeTest, RoundTripMixedTypes) {
  BinaryChunk chunk = MakeMixedChunk(11, 100);
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob).ok());
  auto back = DeserializeChunk(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectChunksEqual(chunk, *back);
}

TEST(ChunkSerdeTest, RoundTripEmptyChunk) {
  BinaryChunk chunk(0);
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob).ok());
  auto back = DeserializeChunk(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 0u);
}

TEST(ChunkSerdeTest, DetectsBitFlip) {
  BinaryChunk chunk = MakeMixedChunk(1, 50);
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob).ok());
  blob[blob.size() / 2] ^= 0x01;
  auto back = DeserializeChunk(blob);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(ChunkSerdeTest, DetectsTruncation) {
  BinaryChunk chunk = MakeMixedChunk(1, 50);
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob).ok());
  auto back = DeserializeChunk(std::string_view(blob).substr(0, blob.size() / 2));
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(ChunkSerdeTest, DetectsBadMagic) {
  auto back = DeserializeChunk("this is not a chunk blob at all");
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(ChunkSerdeTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1aHash(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1aHash("a"), 0xaf63dc4c8601ec8cull);
}

// Property sweep: serialization round-trips across sizes.
class SerdeSweepTest : public testing::TestWithParam<size_t> {};

TEST_P(SerdeSweepTest, RoundTrip) {
  BinaryChunk chunk = MakeMixedChunk(GetParam(), GetParam());
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob).ok());
  auto back = DeserializeChunk(blob);
  ASSERT_TRUE(back.ok());
  ExpectChunksEqual(chunk, *back);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerdeSweepTest,
                         testing::Values(0, 1, 2, 17, 128, 1000));

TEST(ChunkSerdeTest, CompressedRoundTrip) {
  BinaryChunk chunk = MakeMixedChunk(11, 200);
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob, /*compress=*/true).ok());
  auto back = DeserializeChunk(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectChunksEqual(chunk, *back);
}

TEST(ChunkSerdeTest, CompressionShrinksClusteredData) {
  // Sorted (clustered) integers delta-compress far below 4 bytes/value.
  BinaryChunk chunk(0);
  ColumnVector vec(FieldType::kUint32);
  for (uint32_t i = 0; i < 10000; ++i) vec.AppendUint32(1000000 + i * 3);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(vec)).ok());
  std::string raw_blob, packed_blob;
  ASSERT_TRUE(SerializeChunk(chunk, &raw_blob, false).ok());
  ASSERT_TRUE(SerializeChunk(chunk, &packed_blob, true).ok());
  EXPECT_LT(packed_blob.size() * 3, raw_blob.size());
  auto back = DeserializeChunk(packed_blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->column(0).AsUint32()[9999], 1000000u + 9999 * 3);
}

TEST(ChunkSerdeTest, CompressedInt64WithNegatives) {
  BinaryChunk chunk(0);
  ColumnVector vec(FieldType::kInt64);
  vec.AppendInt64(INT64_MIN);
  vec.AppendInt64(-1);
  vec.AppendInt64(0);
  vec.AppendInt64(INT64_MAX);
  ASSERT_TRUE(chunk.AddColumn(0, std::move(vec)).ok());
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob, true).ok());
  auto back = DeserializeChunk(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->column(0).AsInt64()[0], INT64_MIN);
  EXPECT_EQ(back->column(0).AsInt64()[3], INT64_MAX);
}

TEST(ChunkSerdeTest, CompressedCorruptionDetected) {
  BinaryChunk chunk = MakeMixedChunk(1, 100);
  std::string blob;
  ASSERT_TRUE(SerializeChunk(chunk, &blob, true).ok());
  blob[blob.size() - 3] ^= 0x10;
  EXPECT_TRUE(DeserializeChunk(blob).status().IsCorruption());
}

TEST(ChunkSortTest, GatherReordersAllTypes) {
  ColumnVector u(FieldType::kUint32);
  u.AppendUint32(10);
  u.AppendUint32(20);
  u.AppendUint32(30);
  auto gathered = GatherColumn(u, {2, 0, 1});
  EXPECT_EQ(gathered.AsUint32()[0], 30u);
  EXPECT_EQ(gathered.AsUint32()[1], 10u);
  EXPECT_EQ(gathered.AsUint32()[2], 20u);

  ColumnVector s(FieldType::kString);
  s.AppendString("a");
  s.AppendString("bb");
  s.AppendString("ccc");
  auto gs = GatherColumn(s, {1, 2, 0});
  EXPECT_EQ(gs.StringAt(0), "bb");
  EXPECT_EQ(gs.StringAt(2), "a");

  ColumnVector d(FieldType::kDouble);
  d.AppendDouble(1.5);
  d.AppendDouble(-2.5);
  auto gd = GatherColumn(d, {1, 0});
  EXPECT_DOUBLE_EQ(gd.AsDouble()[0], -2.5);
}

TEST(ChunkSortTest, SortsRowsTogether) {
  BinaryChunk chunk(3);
  ColumnVector key(FieldType::kUint32), payload(FieldType::kString);
  const std::vector<uint32_t> keys = {30, 10, 20};
  const std::vector<std::string> names = {"c", "a", "b"};
  for (size_t i = 0; i < 3; ++i) {
    key.AppendUint32(keys[i]);
    payload.AppendString(names[i]);
  }
  ASSERT_TRUE(chunk.AddColumn(0, std::move(key)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(payload)).ok());
  auto sorted = SortChunkByColumn(chunk, 0);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(sorted->chunk_index(), 3u);
  auto k = sorted->column(0).AsUint32();
  EXPECT_TRUE(std::is_sorted(k.begin(), k.end()));
  // Rows stay aligned: key 10 carries "a".
  EXPECT_EQ(sorted->column(1).StringAt(0), "a");
  EXPECT_EQ(sorted->column(1).StringAt(2), "c");
}

TEST(ChunkSortTest, StringKeyAndStability) {
  BinaryChunk chunk(0);
  ColumnVector key(FieldType::kString), order(FieldType::kUint32);
  const std::vector<std::string> keys = {"b", "a", "b", "a"};
  for (size_t i = 0; i < 4; ++i) {
    key.AppendString(keys[i]);
    order.AppendUint32(static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(chunk.AddColumn(0, std::move(key)).ok());
  ASSERT_TRUE(chunk.AddColumn(1, std::move(order)).ok());
  auto sorted = SortChunkByColumn(chunk, 0);
  ASSERT_TRUE(sorted.ok());
  // Stable: equal keys keep their original relative order.
  EXPECT_EQ(sorted->column(1).AsUint32()[0], 1u);  // first "a"
  EXPECT_EQ(sorted->column(1).AsUint32()[1], 3u);  // second "a"
  EXPECT_EQ(sorted->column(1).AsUint32()[2], 0u);  // first "b"
}

TEST(ChunkSortTest, MissingColumnRejected) {
  BinaryChunk chunk(0);
  EXPECT_TRUE(SortChunkByColumn(chunk, 5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scanraw
