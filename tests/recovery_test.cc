// Crash-recovery tests: a forked child runs the load protocol with an armed
// kill-point, _exit()s mid-protocol, and the parent restarts from whatever
// the crash left on disk — the recovered system must answer queries
// identically to an uncrashed run. Plus graceful-degradation tests for
// failed background writes (disk full) and reconciliation of catalogs that
// outran a truncated storage file.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/csv_generator.h"
#include "db/recovery.h"
#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/explain.h"
#include "scanraw/scan_raw.h"
#include "scanraw/scanraw_manager.h"

namespace scanraw {
namespace {

constexpr int kChildDoneExitCode = 0;
constexpr int kChildErrorExitCode = 3;

class RecoveryTest : public testing::Test {
 protected:
  static constexpr uint64_t kRows = 2000;
  static constexpr size_t kCols = 4;
  static constexpr uint64_t kChunkRows = 250;  // 8 chunks

  void SetUp() override {
    std::string name = testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    const std::string base = testing::TempDir() + "/recovery_" + name;
    csv_path_ = base + ".csv";
    db_path_ = base + ".db";
    catalog_path_ = base + ".catalog";
    (void)RemoveFileIfExists(db_path_);
    (void)RemoveFileIfExists(catalog_path_);
    CsvSpec spec;
    spec.num_rows = kRows;
    spec.num_columns = kCols;
    spec.seed = 42;
    auto info = GenerateCsvFile(csv_path_, spec);
    ASSERT_TRUE(info.ok());
    info_ = *info;
    schema_ = CsvSchema(spec);
  }

  ScanRawOptions FullLoadOptions() const {
    ScanRawOptions options;
    options.policy = LoadPolicy::kFullLoad;
    options.num_workers = 2;
    options.chunk_rows = kChunkRows;
    options.cache_capacity_chunks = 4;
    return options;
  }

  static QuerySpec SumQuery(std::vector<size_t> cols) {
    QuerySpec spec;
    spec.sum_columns = std::move(cols);
    return spec;
  }

  QuerySpec SumAllQuery() const {
    std::vector<size_t> cols(kCols);
    for (size_t c = 0; c < kCols; ++c) cols[c] = c;
    return SumQuery(std::move(cols));
  }

  // Child workload, run under an installed fault injection. Phase A loads
  // columns {0,1} and saves the catalog; phase B loads the rest and saves
  // again. Named kill-points with hit counts past phase A's tally crash the
  // child mid-phase-B, i.e. with a valid phase-A catalog + storage on disk.
  // Never returns: _exit()s with kChildDoneExitCode (protocol completed),
  // kFaultKillExitCode (kill-point fired inside a library call), or
  // kChildErrorExitCode (unexpected failure).
  void ChildWorkload() const {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    auto manager = ScanRawManager::Create(config);
    if (!manager.ok()) ::_exit(kChildErrorExitCode);
    if (!(*manager)
             ->RegisterRawFile("t", csv_path_, schema_, FullLoadOptions())
             .ok()) {
      ::_exit(kChildErrorExitCode);
    }
    // Phase A: partial load + durable catalog.
    if (!(*manager)->Query("t", SumQuery({0, 1})).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    if (!(*manager)->SaveCatalog(catalog_path_).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    // Phase B: load the remaining columns, save again.
    if (!(*manager)->Query("t", SumAllQuery()).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    if (!(*manager)->SaveCatalog(catalog_path_).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    ::_exit(kChildDoneExitCode);
  }

  // Forks, runs ChildWorkload under `plan` in the child, and returns the
  // child's exit code.
  int RunCrashingChild(const FaultPlan& plan) const {
    const pid_t pid = fork();
    if (pid == 0) {
      // Install before creating the manager so the database writer goes
      // through the fault-injecting decorator.
      ScopedFaultInjection fault(plan);
      ChildWorkload();  // never returns
    }
    EXPECT_GT(pid, 0);
    int wstatus = 0;
    EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
    return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  }

  // Restarts from whatever the crash left behind and checks that queries
  // return exactly the uncrashed ground truth.
  void RecoverAndVerify() const {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    const bool have_catalog =
        FileExists(catalog_path_) && FileExists(db_path_);
    config.reuse_existing_db = have_catalog;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    if (have_catalog) {
      ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
      ASSERT_TRUE((*manager)->AttachOptions("t", FullLoadOptions()).ok());
    } else {
      ASSERT_TRUE(
          (*manager)
              ->RegisterRawFile("t", csv_path_, schema_, FullLoadOptions())
              .ok());
    }

    auto all = (*manager)->Query("t", SumAllQuery());
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    EXPECT_EQ(all->total_sum, info_.total_sum);
    EXPECT_EQ(all->rows_scanned, kRows);
    auto one = (*manager)->Query("t", SumQuery({2}));
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->total_sum, info_.column_sums[2]);

    // Catalog invariants survived the crash.
    auto meta = (*manager)->catalog()->GetTable("t");
    ASSERT_TRUE(meta.ok());
    uint64_t total_rows = 0;
    for (const auto& c : meta->chunks) {
      EXPECT_LE(c.loaded_columns.size(), kCols);
      total_rows += c.num_rows;
    }
    EXPECT_EQ(total_rows, kRows);

    // A save/load cycle of the recovered state round-trips cleanly.
    ASSERT_TRUE((*manager)->SaveCatalog(catalog_path_).ok());
    ScanRawManager::Config again_config;
    again_config.db_path = db_path_;
    again_config.reuse_existing_db = true;
    auto again = ScanRawManager::Create(again_config);
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE((*again)->LoadCatalog(catalog_path_).ok());
    EXPECT_TRUE((*again)->last_recovery().clean());
    ASSERT_TRUE((*again)->AttachOptions("t", FullLoadOptions()).ok());
    auto replay = (*again)->Query("t", SumAllQuery());
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_EQ(replay->total_sum, all->total_sum);
    EXPECT_EQ(replay->rows_scanned, all->rows_scanned);
    EXPECT_EQ(replay->rows_matched, all->rows_matched);
  }

  std::string csv_path_;
  std::string db_path_;
  std::string catalog_path_;
  CsvFileInfo info_;
  Schema schema_;
};

TEST_F(RecoveryTest, CleanRestartRoundTrip) {
  {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(
        (*manager)
            ->RegisterRawFile("t", csv_path_, schema_, FullLoadOptions())
            .ok());
    auto result = (*manager)->Query("t", SumAllQuery());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum);
    ASSERT_TRUE((*manager)->SaveCatalog(catalog_path_).ok());
  }
  ScanRawManager::Config config;
  config.db_path = db_path_;
  config.reuse_existing_db = true;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
  EXPECT_TRUE((*manager)->last_recovery().clean());
  ASSERT_TRUE((*manager)->AttachOptions("t", FullLoadOptions()).ok());
  // Fully loaded: served straight from the database.
  auto result = (*manager)->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  EXPECT_TRUE((*manager)->IsRetired("t"));
}

// One parameter per step of the extract -> WriteSegment -> Sync ->
// RecordSegment -> SaveToFile protocol. The hit count aims the crash either
// at phase A (before any catalog exists: recovery = fresh start) or at
// phase B (a valid phase-A catalog + storage exist: recovery must keep all
// phase-A work and re-extract the rest).
struct KillPointCase {
  const char* point;
  uint64_t hit;
};

void PrintTo(const KillPointCase& c, std::ostream* os) {
  *os << c.point << "@" << c.hit;
}

class KillPointMatrixTest
    : public RecoveryTest,
      public testing::WithParamInterface<KillPointCase> {};

TEST_P(KillPointMatrixTest, RestartRecoversGroundTruth) {
  FaultPlan plan;
  plan.kill_point = GetParam().point;
  plan.kill_point_hit = GetParam().hit;
  const int code = RunCrashingChild(plan);
  ASSERT_EQ(code, kFaultKillExitCode)
      << "kill-point " << GetParam().point << " hit " << GetParam().hit
      << " was not reached (exit " << code << ")";
  RecoverAndVerify();
}

// Phase A performs, in order: 8 chunk extractions, 8 segment appends, 8
// catalog records, then one catalog save. The hit counts below place the
// crash at the first phase-A occurrence (hit 1 / save hit 1) or the first
// phase-B occurrence (hit 9 / save hit 2).
INSTANTIATE_TEST_SUITE_P(
    Protocol, KillPointMatrixTest,
    testing::Values(
        KillPointCase{"scanraw.extract.converted", 1},
        KillPointCase{"scanraw.extract.converted", 9},
        KillPointCase{"storage.write_segment.before_append", 1},
        KillPointCase{"storage.write_segment.before_append", 9},
        KillPointCase{"storage.write_segment.after_append", 9},
        KillPointCase{"scanraw.write.before_record", 9},
        KillPointCase{"scanraw.write.after_record", 9},
        KillPointCase{"manager.save_catalog.before", 1},
        KillPointCase{"manager.save_catalog.before", 2},
        KillPointCase{"manager.save_catalog.after", 2},
        KillPointCase{"atomic_write.after_append", 1},
        KillPointCase{"atomic_write.after_append", 2},
        KillPointCase{"atomic_write.after_sync", 2},
        KillPointCase{"atomic_write.after_rename", 2}),
    [](const testing::TestParamInfo<KillPointCase>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_hit" + std::to_string(info.param.hit);
    });

// Crash in the middle of a storage append: the file ends in a torn,
// checksum-less prefix of a segment the catalog never recorded. Recovery
// must keep every phase-A segment and ignore the torn tail.
TEST_F(RecoveryTest, TornStorageAppendCrashRecovers) {
  FaultPlan plan;
  plan.path_substring = ".db";
  plan.kill_append_at = 10;  // phase A appends 8 segments; crash in phase B
  plan.torn_fraction = 0.5;
  const int code = RunCrashingChild(plan);
  ASSERT_EQ(code, kFaultKillExitCode);
  ASSERT_TRUE(FileExists(catalog_path_));  // phase A saved it
  RecoverAndVerify();
}

// A catalog that references bytes beyond the storage EOF (storage truncated
// out from under it) must drop those segments on load, not serve
// Corruption at query time; the affected chunks revert to raw-side
// processing.
TEST_F(RecoveryTest, ReconcileDropsSegmentsPastStorageEof) {
  {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(
        (*manager)
            ->RegisterRawFile("t", csv_path_, schema_, FullLoadOptions())
            .ok());
    ASSERT_TRUE((*manager)->Query("t", SumAllQuery()).ok());
    ASSERT_TRUE((*manager)->SaveCatalog(catalog_path_).ok());
  }
  // Chop the storage file in half behind the catalog's back.
  auto size = GetFileSize(db_path_);
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(truncate(db_path_.c_str(), static_cast<off_t>(*size / 2)), 0);

  ScanRawManager::Config config;
  config.db_path = db_path_;
  config.reuse_existing_db = true;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
  const ReconcileReport report = (*manager)->last_recovery();
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.segments_dropped, 0u);
  EXPECT_GT(report.chunks_reverted, 0u);
  EXPECT_EQ(
      (*manager)->telemetry()->metrics().GetCounter(
          "recovery.segments_dropped")->value(),
      report.segments_dropped);
  // Dropped chunks re-extract from the raw file; results stay exact.
  ASSERT_TRUE((*manager)->AttachOptions("t", FullLoadOptions()).ok());
  auto result = (*manager)->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  EXPECT_EQ(result->rows_scanned, kRows);
}

// Disk-full during speculative loading: the query must keep running from
// the raw side, count the failures, and answer exactly.
TEST_F(RecoveryTest, SpeculativeEnospcFallsBackToRawSide) {
  FaultPlan plan;
  plan.path_substring = ".db";
  plan.append_error_rate = 1.0;
  plan.error_errno = 28;  // ENOSPC
  ScopedFaultInjection fault(plan);

  ScanRawManager::Config config;
  config.db_path = db_path_;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ScanRawOptions options = FullLoadOptions();
  options.policy = LoadPolicy::kSpeculativeLoading;
  options.write_failure_backoff_ms = 1;  // retry quickly so failures tally
  ASSERT_TRUE(
      (*manager)->RegisterRawFile("t", csv_path_, schema_, options).ok());

  auto result = (*manager)->Query("t", SumAllQuery());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);

  ScanRaw* op = (*manager)->GetOperator("t");
  ASSERT_NE(op, nullptr);
  op->WaitForWrites();
  EXPECT_GT(op->profile().write_failures.load(), 0u);
  EXPECT_GT(
      (*manager)->telemetry()->metrics().GetCounter("scanraw.write_failures")
          ->value(),
      0u);
  EXPECT_GT(fault.injector()->counters().append_errors.load(), 0u);
  // Nothing was recorded as loaded from the failing writes.
  EXPECT_DOUBLE_EQ(
      (*manager)->catalog()->GetTable("t")->LoadedFraction(), 0.0);

  // The operator survives: further queries still answer exactly.
  auto again = (*manager)->Query("t", SumAllQuery());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->total_sum, info_.total_sum);
}

// ------------------------------------------------- posmap sidecar recovery
//
// The persisted positional-map index (`<catalog>.posmap.<table>`): a warm
// restart must answer a previously-mapped query with zero TOKENIZE bytes
// and byte-identical results, while a torn, stale, or dialect-mismatched
// sidecar degrades to full re-tokenization — never wrong results.
class PosmapRecoveryTest : public RecoveryTest {
 protected:
  // External-tables policy: chunks are never loaded into the database, so
  // every query re-reads the raw file and the positional maps are the only
  // thing standing between a warm restart and a full re-tokenize.
  ScanRawOptions PosmapOptions() const {
    ScanRawOptions options;
    options.policy = LoadPolicy::kExternalTables;
    options.num_workers = 2;
    options.chunk_rows = kChunkRows;
    options.cache_capacity_chunks = 0;  // no binary cache: always raw
    options.cache_positional_maps = true;
    options.positional_map_cache_chunks = 16;
    options.persist_positional_maps = true;
    return options;
  }

  std::string SidecarPath() const {
    return PosmapSidecarPath(catalog_path_, "t");
  }

  // Cold scan + catalog save; leaves a sidecar with all 8 chunk maps.
  void ColdScanAndSave() const {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(
        (*manager)
            ->RegisterRawFile("t", csv_path_, schema_, PosmapOptions())
            .ok());
    obs::ExplainReport cold;
    auto result = (*manager)->Query("t", SumAllQuery(), &cold);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->total_sum, info_.total_sum);
    ASSERT_GT(cold.bytes_tokenized, 0u);  // the cold scan really tokenized
    ASSERT_TRUE((*manager)->SaveCatalog(catalog_path_).ok());
    ASSERT_TRUE(FileExists(SidecarPath()));
  }

  // Restarts against whatever is on disk and runs the all-columns query
  // with EXPLAIN. `attach` defaults to the same options the sidecar was
  // saved under.
  void RestartAndQuery(const ScanRawOptions& attach,
                       obs::ExplainReport* explain) const {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    config.reuse_existing_db = true;
    auto manager = ScanRawManager::Create(config);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
    ASSERT_TRUE((*manager)->AttachOptions("t", attach).ok());
    auto result = (*manager)->Query("t", SumAllQuery(), explain);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->total_sum, info_.total_sum);
    EXPECT_EQ(result->rows_scanned, kRows);
    last_posmaps_dropped_ = (*manager)->last_recovery().posmaps_dropped;
  }

  // Child for the fork-based crash tests: cold scan, save, scan again,
  // save again. Kill-points aimed at the second save crash the child with
  // a complete first-save catalog + sidecar already durable.
  void PosmapChildWorkload() const {
    ScanRawManager::Config config;
    config.db_path = db_path_;
    auto manager = ScanRawManager::Create(config);
    if (!manager.ok()) ::_exit(kChildErrorExitCode);
    if (!(*manager)
             ->RegisterRawFile("t", csv_path_, schema_, PosmapOptions())
             .ok()) {
      ::_exit(kChildErrorExitCode);
    }
    if (!(*manager)->Query("t", SumAllQuery()).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    if (!(*manager)->SaveCatalog(catalog_path_).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    if (!(*manager)->Query("t", SumQuery({0, 1})).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    if (!(*manager)->SaveCatalog(catalog_path_).ok()) {
      ::_exit(kChildErrorExitCode);
    }
    ::_exit(kChildDoneExitCode);
  }

  int RunCrashingPosmapChild(const FaultPlan& plan) const {
    const pid_t pid = fork();
    if (pid == 0) {
      ScopedFaultInjection fault(plan);
      PosmapChildWorkload();  // never returns
    }
    EXPECT_GT(pid, 0);
    int wstatus = 0;
    EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
    return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  }

  mutable size_t last_posmaps_dropped_ = 0;
};

TEST_F(PosmapRecoveryTest, SidecarRoundTripSkipsTokenize) {
  ColdScanAndSave();

  ScanRawManager::Config config;
  config.db_path = db_path_;
  config.reuse_existing_db = true;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
  EXPECT_EQ((*manager)->last_recovery().posmaps_dropped, 0u);
  EXPECT_EQ((*manager)
                ->telemetry()
                ->metrics()
                .GetCounter("recovery.posmap_chunks_loaded")
                ->value(),
            8u);
  ASSERT_TRUE((*manager)->AttachOptions("t", PosmapOptions()).ok());

  obs::ExplainReport warm;
  auto result = (*manager)->Query("t", SumAllQuery(), &warm);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  EXPECT_EQ(result->rows_scanned, kRows);
  // The warm restart tokenized nothing: all 8 chunks were answered from
  // the persisted maps, reported as posmap-disk provenance.
  EXPECT_EQ(warm.bytes_tokenized, 0u);
  EXPECT_EQ(warm.posmap_hits, 8u);
  EXPECT_EQ(warm.posmap_misses, 0u);
  EXPECT_EQ(warm.posmap_disk_hits, 8u);
  EXPECT_EQ((*manager)
                ->telemetry()
                ->metrics()
                .GetCounter("scanraw.posmap.loaded_from_disk")
                ->value(),
            8u);
  // A narrower follow-up query also rides the persisted maps.
  obs::ExplainReport narrow;
  auto one = (*manager)->Query("t", SumQuery({2}), &narrow);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->total_sum, info_.column_sums[2]);
  EXPECT_EQ(narrow.bytes_tokenized, 0u);
}

// The acceptance scenario: the child crashes mid-way through its second
// catalog save (the seed-deterministic fault injector fires inside
// AtomicWriteFile or around the sidecar write); the parent restarts from
// the durable first save and must answer the previously-mapped query with
// zero TOKENIZE bytes and byte-identical sums.
struct PosmapKillCase {
  const char* point;
  uint64_t hit;
};

void PrintTo(const PosmapKillCase& c, std::ostream* os) {
  *os << c.point << "@" << c.hit;
}

class PosmapKillMatrixTest
    : public PosmapRecoveryTest,
      public testing::WithParamInterface<PosmapKillCase> {};

TEST_P(PosmapKillMatrixTest, WarmRestartAfterCrashSkipsTokenize) {
  FaultPlan plan;
  plan.kill_point = GetParam().point;
  plan.kill_point_hit = GetParam().hit;
  const int code = RunCrashingPosmapChild(plan);
  ASSERT_EQ(code, kFaultKillExitCode)
      << "kill-point " << GetParam().point << " hit " << GetParam().hit
      << " was not reached (exit " << code << ")";
  ASSERT_TRUE(FileExists(catalog_path_));  // first save was durable
  ASSERT_TRUE(FileExists(SidecarPath()));

  obs::ExplainReport warm;
  RestartAndQuery(PosmapOptions(), &warm);
  EXPECT_EQ(last_posmaps_dropped_, 0u);
  EXPECT_EQ(warm.bytes_tokenized, 0u);
  EXPECT_EQ(warm.posmap_disk_hits, 8u);
}

// Sidecar AtomicWriteFile ordinals in the child: save 1 writes sidecar
// then catalog (atomic writes 1, 2), save 2 writes sidecar then catalog
// (atomic writes 3, 4). Killing around write 3 leaves the first save's
// sidecar + catalog pair; killing after write 3's rename leaves the second
// (byte-identical) sidecar with the first catalog. Both must warm-restart.
INSTANTIATE_TEST_SUITE_P(
    SecondSave, PosmapKillMatrixTest,
    testing::Values(PosmapKillCase{"scanraw.posmap.before_save", 2},
                    PosmapKillCase{"scanraw.posmap.after_save", 2},
                    PosmapKillCase{"atomic_write.after_append", 3},
                    PosmapKillCase{"atomic_write.after_sync", 3},
                    PosmapKillCase{"atomic_write.after_rename", 3},
                    PosmapKillCase{"manager.save_catalog.before", 2}),
    [](const testing::TestParamInfo<PosmapKillCase>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_hit" + std::to_string(info.param.hit);
    });

// A torn sidecar (truncated mid-entry) fails its checksum and is dropped
// at LoadCatalog; the scan degrades to a full re-tokenize with exact
// results.
TEST_F(PosmapRecoveryTest, TornSidecarDegradesToRetokenize) {
  ColdScanAndSave();
  auto size = GetFileSize(SidecarPath());
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(truncate(SidecarPath().c_str(), static_cast<off_t>(*size / 2)),
            0);

  ScanRawManager::Config config;
  config.db_path = db_path_;
  config.reuse_existing_db = true;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
  EXPECT_EQ((*manager)->last_recovery().posmaps_dropped, 1u);
  EXPECT_EQ((*manager)
                ->telemetry()
                ->metrics()
                .GetCounter("recovery.posmap_dropped")
                ->value(),
            1u);
  ASSERT_TRUE((*manager)->AttachOptions("t", PosmapOptions()).ok());
  obs::ExplainReport explain;
  auto result = (*manager)->Query("t", SumAllQuery(), &explain);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  EXPECT_GT(explain.bytes_tokenized, 0u);  // re-tokenized, not served stale
  EXPECT_EQ(explain.posmap_disk_hits, 0u);
}

// A sidecar saved under one tokenize dialect must not serve a restart that
// attaches different dialect options (--quoted-csv toggled between runs):
// the maps are dropped at operator creation and the scan re-tokenizes.
TEST_F(PosmapRecoveryTest, DialectMismatchedSidecarDropped) {
  ColdScanAndSave();  // saved with quoted_fields = false

  ScanRawOptions quoted = PosmapOptions();
  quoted.quoted_fields = true;
  obs::ExplainReport explain;
  RestartAndQuery(quoted, &explain);
  EXPECT_EQ(last_posmaps_dropped_, 1u);
  EXPECT_GT(explain.bytes_tokenized, 0u);
  EXPECT_EQ(explain.posmap_disk_hits, 0u);
}

// A sidecar whose recorded raw-file stat no longer matches (the CSV was
// rewritten, even with identical bytes) is stale and must be dropped: the
// offsets could silently mis-tokenize a changed file.
TEST_F(PosmapRecoveryTest, StaleSidecarDropped) {
  ColdScanAndSave();
  // Rewrite the raw file with identical content; mtime changes.
  usleep(20 * 1000);
  CsvSpec spec;
  spec.num_rows = kRows;
  spec.num_columns = kCols;
  spec.seed = 42;
  auto info = GenerateCsvFile(csv_path_, spec);
  ASSERT_TRUE(info.ok());

  ScanRawManager::Config config;
  config.db_path = db_path_;
  config.reuse_existing_db = true;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->LoadCatalog(catalog_path_).ok());
  EXPECT_EQ((*manager)->last_recovery().posmaps_dropped, 1u);
  ASSERT_TRUE((*manager)->AttachOptions("t", PosmapOptions()).ok());
  obs::ExplainReport explain;
  auto result = (*manager)->Query("t", SumAllQuery(), &explain);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_sum, info_.total_sum);
  EXPECT_GT(explain.bytes_tokenized, 0u);
  EXPECT_EQ(explain.posmap_disk_hits, 0u);
}

// Under synchronous-loading policies a failed write is part of the query
// and must surface as an error rather than degrade silently.
TEST_F(RecoveryTest, FullLoadSurfacesWriteError) {
  FaultPlan plan;
  plan.path_substring = ".db";
  plan.append_error_rate = 1.0;
  plan.error_errno = 28;  // ENOSPC
  ScopedFaultInjection fault(plan);

  ScanRawManager::Config config;
  config.db_path = db_path_;
  auto manager = ScanRawManager::Create(config);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(
      (*manager)
          ->RegisterRawFile("t", csv_path_, schema_, FullLoadOptions())
          .ok());
  auto result = (*manager)->Query("t", SumAllQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace scanraw
