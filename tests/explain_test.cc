// Unit tests for the query-scoped observability layer: SpanProfiler
// interval-union aggregation and critical-path selection, ExplainReport
// rendering, ProgressTracker rolling-window ETA arithmetic, and the
// bench_compare regression gate (both directions).

#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "obs/bench_compare.h"
#include "obs/explain.h"
#include "obs/progress.h"
#include "obs/span_profiler.h"

namespace scanraw {
namespace obs {
namespace {

// ---------------------------------------------------------------- profiler

TEST(SpanProfilerTest, BusySumsAndIntervalUnionDiffer) {
  VirtualClock clock;
  SpanProfiler profiler(&clock);
  // Two overlapping PARSE spans on different threads: busy is additive,
  // the wall footprint merges the overlap.
  profiler.RecordSpan(QueryStage::kParse, /*tid=*/1, /*start=*/0,
                      /*dur=*/100);
  profiler.RecordSpan(QueryStage::kParse, /*tid=*/2, /*start=*/50,
                      /*dur=*/100);
  clock.SetNanos(200);
  profiler.End();

  const auto report = profiler.Aggregate();
  const auto& parse =
      report.stages[static_cast<size_t>(QueryStage::kParse)];
  EXPECT_EQ(parse.spans, 2u);
  EXPECT_EQ(parse.busy_nanos, 200);
  EXPECT_EQ(parse.covered_nanos, 150);  // [0,100) U [50,150)
  EXPECT_EQ(parse.threads, 2u);
  EXPECT_EQ(report.wall_nanos, 200);
}

TEST(SpanProfilerTest, DisjointSpansUnionIsSum) {
  VirtualClock clock;
  SpanProfiler profiler(&clock);
  profiler.RecordSpan(QueryStage::kRead, 1, 0, 40);
  profiler.RecordSpan(QueryStage::kRead, 1, 100, 60);
  clock.SetNanos(200);
  profiler.End();
  const auto report = profiler.Aggregate();
  const auto& read = report.stages[static_cast<size_t>(QueryStage::kRead)];
  EXPECT_EQ(read.busy_nanos, 100);
  EXPECT_EQ(read.covered_nanos, 100);
  EXPECT_EQ(read.threads, 1u);
}

TEST(SpanProfilerTest, CriticalPathIsLargestCoveredBusyStage) {
  VirtualClock clock;
  SpanProfiler profiler(&clock);
  profiler.RecordSpan(QueryStage::kRead, 1, 0, 120);
  profiler.RecordSpan(QueryStage::kParse, 2, 0, 80);
  // A wait category with the largest coverage must NOT win the critical
  // path: it is blocked time, not busy time.
  profiler.RecordSpan(QueryStage::kDiskWait, 3, 0, 190);
  clock.SetNanos(200);
  profiler.End();

  const auto report = profiler.Aggregate();
  EXPECT_EQ(report.critical_stage, QueryStage::kRead);
  EXPECT_EQ(report.critical_covered_nanos, 120);
  EXPECT_NEAR(report.critical_fraction, 0.6, 1e-9);
  EXPECT_EQ(report.blocked_nanos_total, 190);
  EXPECT_EQ(report.busy_nanos_total, 200);
  EXPECT_EQ(report.distinct_threads, 3u);
}

TEST(SpanProfilerTest, ScopeRecordsOnCurrentThread) {
  VirtualClock clock;
  SpanProfiler profiler(&clock);
  {
    SpanProfiler::Scope scope(&profiler, QueryStage::kTokenize);
    clock.AdvanceNanos(70);
  }
  clock.SetNanos(100);
  profiler.End();
  const auto report = profiler.Aggregate();
  const auto& tok =
      report.stages[static_cast<size_t>(QueryStage::kTokenize)];
  EXPECT_EQ(tok.spans, 1u);
  EXPECT_EQ(tok.busy_nanos, 70);
}

TEST(SpanProfilerTest, NullProfilerScopeIsNoop) {
  SpanProfiler::Scope scope(nullptr, QueryStage::kParse);  // must not crash
}

TEST(SpanProfilerTest, AccountingIdentityHolds) {
  VirtualClock clock;
  SpanProfiler profiler(&clock);
  profiler.RecordSpan(QueryStage::kRead, 1, 0, 100);
  profiler.RecordSpan(QueryStage::kParse, 2, 20, 50);
  profiler.RecordSpan(QueryStage::kThrottleWait, 1, 100, 30);
  clock.SetNanos(200);
  profiler.End();

  const auto report = profiler.Aggregate();
  ExplainReport explain;
  explain.workers = 2;
  explain.FillFromProfile(report);
  // busy + blocked + idle == wall * threads_accounted (idle is residual).
  const double lhs = explain.busy_seconds_total +
                     explain.blocked_seconds_total +
                     explain.idle_seconds_total;
  const double rhs =
      explain.wall_seconds * static_cast<double>(explain.threads_accounted);
  EXPECT_NEAR(lhs, rhs, 1e-9);
  EXPECT_EQ(explain.threads_accounted, 2u);
}

TEST(SpanProfilerTest, OverflowCountsButBoundsMemory) {
  VirtualClock clock;
  SpanProfiler profiler(&clock, /*max_spans_per_stage=*/4);
  for (int i = 0; i < 10; ++i) {
    profiler.RecordSpan(QueryStage::kEngine, 1, i * 10, 5);
  }
  clock.SetNanos(200);
  profiler.End();
  const auto report = profiler.Aggregate();
  const auto& engine =
      report.stages[static_cast<size_t>(QueryStage::kEngine)];
  EXPECT_EQ(engine.spans, 10u);      // all spans counted
  EXPECT_EQ(engine.busy_nanos, 50);  // busy time keeps accumulating
  EXPECT_EQ(report.spans_dropped, 6u);
}

// ----------------------------------------------------------------- explain

ExplainReport MakeReport() {
  VirtualClock clock;
  SpanProfiler profiler(&clock);
  profiler.RecordSpan(QueryStage::kRead, 1, 0, 150'000'000);
  profiler.RecordSpan(QueryStage::kParse, 2, 0, 60'000'000);
  clock.SetNanos(200'000'000);
  profiler.End();

  ExplainReport report;
  report.table = "events";
  report.policy = "speculative-loading";
  report.workers = 4;
  report.FillFromProfile(profiler.Aggregate());
  report.chunks_from_cache = 3;
  report.chunks_from_raw = 1;
  report.chunks_skipped = 2;
  report.chunks_written = 1;
  report.bytes_written = 4096;
  report.speculation_paid_off = true;
  report.cache_hits = 3;
  report.cache_misses = 1;
  report.loaded_fraction_before = 0.25;
  report.loaded_fraction_after = 0.5;
  return report;
}

TEST(ExplainReportTest, TextNamesCriticalStageAndCounts) {
  const ExplainReport report = MakeReport();
  const std::string text = report.ToText();
  EXPECT_NE(text.find("critical path: READ"), std::string::npos);
  EXPECT_NE(text.find("table=events"), std::string::npos);
  EXPECT_NE(text.find("cache=3"), std::string::npos);
  EXPECT_NE(text.find("skipped=2"), std::string::npos);
  EXPECT_NE(text.find("paid-off=yes"), std::string::npos);
}

TEST(ExplainReportTest, JsonIsWellFormedAndCarriesChunkProvenance) {
  const ExplainReport report = MakeReport();
  const std::string json = report.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"critical_path\":{\"stage\":\"READ\""),
            std::string::npos);
  EXPECT_NE(json.find("\"from_cache\":3"), std::string::npos);
  EXPECT_NE(json.find("\"skipped\":2"), std::string::npos);
  EXPECT_NE(json.find("\"paid_off\":true"), std::string::npos);
  // It must round-trip through the bench-compare JSON cursor enough to be
  // recognized as an object (spot check: balanced braces).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(ExplainReportTest, HitRateHandlesZeroTotal) {
  ExplainReport report;
  EXPECT_EQ(report.HitRate(0, 0), 0.0);
  EXPECT_NEAR(report.HitRate(3, 1), 0.75, 1e-9);
}

// ---------------------------------------------------------------- progress

TEST(ProgressTrackerTest, FractionAndEtaFromRollingThroughput) {
  VirtualClock clock;
  ProgressTracker tracker(0, &clock);
  tracker.set_totals(/*bytes_total=*/1000, /*chunks_total=*/10);

  // 100 bytes per second for 4 seconds.
  for (int i = 0; i < 4; ++i) {
    clock.AdvanceSeconds(1.0);
    tracker.AddBytes(100);
    tracker.CountChunk();
    tracker.Snapshot();
  }
  const QueryProgress progress = tracker.Snapshot();
  EXPECT_EQ(progress.bytes_processed, 400u);
  EXPECT_NEAR(progress.fraction, 0.4, 1e-9);
  EXPECT_NEAR(progress.throughput_bps, 100.0, 1.0);
  // 600 bytes remain at ~100 B/s.
  EXPECT_NEAR(progress.eta_seconds, 6.0, 0.5);
  EXPECT_EQ(progress.chunks_delivered, 4u);
}

TEST(ProgressTrackerTest, UnknownTotalsMeanNoEta) {
  VirtualClock clock;
  ProgressTracker tracker(0, &clock);
  clock.AdvanceSeconds(1.0);
  tracker.AddBytes(500);
  const QueryProgress progress = tracker.Snapshot();
  EXPECT_EQ(progress.bytes_total, 0u);
  EXPECT_EQ(progress.fraction, 0.0);
  EXPECT_LT(progress.eta_seconds, 0.0);
  // The byte-count line form is used when the total is unknown.
  EXPECT_NE(progress.ToLine().find("MB"), std::string::npos);
}

TEST(ProgressTrackerTest, RollingWindowFollowsPhaseChange) {
  VirtualClock clock;
  ProgressTracker tracker(0, &clock);
  tracker.set_totals(100'000, 0);
  // Fast phase: 1000 B/s.
  for (int i = 0; i < 20; ++i) {
    clock.AdvanceSeconds(1.0);
    tracker.AddBytes(1000);
    tracker.Snapshot();
  }
  // Slow phase: 10 B/s. After enough samples the window must forget the
  // fast phase entirely.
  QueryProgress progress;
  for (int i = 0; i < 20; ++i) {
    clock.AdvanceSeconds(1.0);
    tracker.AddBytes(10);
    progress = tracker.Snapshot();
  }
  EXPECT_NEAR(progress.throughput_bps, 10.0, 1.0);
}

TEST(ProgressReporterTest, EmitsFirstAndFinalReports) {
  ProgressTracker tracker;
  int calls = 0;
  ProgressReporter reporter(
      &tracker, [&](const QueryProgress&) { ++calls; },
      /*interval_ms=*/10'000);  // interval far longer than the test
  reporter.Start();
  reporter.Stop();
  EXPECT_EQ(calls, 2);  // one at Start, one at Stop
}

// ------------------------------------------------------------ bench gate

constexpr char kBaselineJson[] =
    "{\"bench\":\"fig5_pipeline\","
    "\"headers\":[\"columns\",\"READ (ms)\",\"PARSE (ms)\"],"
    "\"rows\":[[\"2\",\"10.0\",\"20.0\"],[\"4\",\"30.0\",\"40.0\"]],"
    "\"extra\":{\"nested\":[1,2,{\"deep\":\"x\"}]}}";

TEST(BenchCompareTest, IdenticalArtifactsDoNotRegress) {
  auto baseline = ParseBenchJson(kBaselineJson);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->name, "fig5_pipeline");
  ASSERT_EQ(baseline->rows.size(), 2u);

  const BenchComparison comparison =
      CompareBenchTables(*baseline, *baseline, 5.0);
  EXPECT_FALSE(comparison.has_regression());
  EXPECT_EQ(comparison.deltas.size(), 4u);  // 2 rows x 2 numeric columns
  EXPECT_TRUE(comparison.unmatched.empty());
}

TEST(BenchCompareTest, SlowdownBeyondThresholdRegresses) {
  auto baseline = ParseBenchJson(kBaselineJson);
  ASSERT_TRUE(baseline.ok());
  BenchTable candidate = *baseline;
  candidate.rows[0][2] = "22.0";  // PARSE 20.0 -> 22.0 = +10%

  const BenchComparison at5 = CompareBenchTables(*baseline, candidate, 5.0);
  EXPECT_TRUE(at5.has_regression());
  int regressed = 0;
  for (const BenchDelta& d : at5.deltas) {
    if (d.regressed) {
      ++regressed;
      EXPECT_EQ(d.row_key, "2");
      EXPECT_EQ(d.column, "PARSE (ms)");
      EXPECT_NEAR(d.delta_pct, 10.0, 1e-6);
    }
  }
  EXPECT_EQ(regressed, 1);
  EXPECT_NE(at5.ToText().find("REGRESSION"), std::string::npos);

  // The same slowdown passes a looser gate.
  EXPECT_FALSE(CompareBenchTables(*baseline, candidate, 15.0)
                   .has_regression());
}

TEST(BenchCompareTest, ImprovementNeverRegresses) {
  auto baseline = ParseBenchJson(kBaselineJson);
  ASSERT_TRUE(baseline.ok());
  BenchTable candidate = *baseline;
  candidate.rows[0][1] = "1.0";  // READ 10.0 -> 1.0, a 90% improvement
  const BenchComparison comparison =
      CompareBenchTables(*baseline, candidate, 5.0);
  EXPECT_FALSE(comparison.has_regression());
  bool saw_improvement = false;
  for (const BenchDelta& d : comparison.deltas) {
    if (d.row_key == "2" && d.column == "READ (ms)") {
      saw_improvement = true;
      EXPECT_NEAR(d.delta_pct, -90.0, 1e-6);
    }
  }
  EXPECT_TRUE(saw_improvement);
}

TEST(BenchCompareTest, UnmatchedRowsAreReportedNotCompared) {
  auto baseline = ParseBenchJson(kBaselineJson);
  ASSERT_TRUE(baseline.ok());
  BenchTable candidate = *baseline;
  candidate.rows.pop_back();  // candidate lost row "4"
  candidate.rows.push_back({"8", "1.0", "2.0"});  // and gained row "8"

  const BenchComparison comparison =
      CompareBenchTables(*baseline, candidate, 5.0);
  EXPECT_FALSE(comparison.has_regression());
  ASSERT_EQ(comparison.unmatched.size(), 2u);
}

TEST(BenchCompareTest, NonNumericCellsAreIgnored) {
  const char* json =
      "{\"bench\":\"t\",\"headers\":[\"key\",\"note\",\"ms\"],"
      "\"rows\":[[\"a\",\"fast path\",\"5.0\"]]}";
  auto table = ParseBenchJson(json);
  ASSERT_TRUE(table.ok());
  const BenchComparison comparison = CompareBenchTables(*table, *table, 5.0);
  EXPECT_EQ(comparison.deltas.size(), 1u);  // only "ms" is numeric
}

TEST(BenchCompareTest, MalformedJsonIsRejected) {
  EXPECT_FALSE(ParseBenchJson("not json").ok());
  EXPECT_FALSE(ParseBenchJson("{\"bench\":\"x\"}").ok());  // no headers/rows
  EXPECT_FALSE(ParseBenchJson("{\"headers\":[],\"rows\":[}").ok());
}

}  // namespace
}  // namespace obs
}  // namespace scanraw
