// Correctly-locked use of the annotated primitives; must compile cleanly
// under -Wthread-safety -Werror=thread-safety.
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    scanraw::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() const EXCLUDES(mu_) {
    scanraw::MutexLock lock(mu_);
    return balance_;
  }

  void WaitNonZero() EXCLUDES(mu_) {
    scanraw::MutexLock lock(mu_);
    while (balance_ == 0) cv_.Wait(lock);
  }

 private:
  void AddLocked(int amount) REQUIRES(mu_) { balance_ += amount; }

  mutable scanraw::Mutex mu_;
  scanraw::CondVar cv_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return a.balance() == 1 ? 0 : 1;
}
