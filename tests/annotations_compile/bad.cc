// Accesses a GUARDED_BY field without holding its mutex. Under Clang with
// -Wthread-safety -Werror=thread-safety this must FAIL to compile; the
// surrounding CMake check asserts exactly that.
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG: mu_ not held
  }

 private:
  scanraw::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return 0;
}
