#!/usr/bin/env python3
"""Whole-program lock-order analyzer for the scanraw lock hierarchy.

Builds the may-hold-while-acquiring graph over every Mutex declared with a
LockRank (src/common/thread_annotations.h) and fails on:

  * any cycle in the graph (an ABBA deadlock candidate), and
  * any edge that acquires a lock whose rank is not strictly below the
    rank of a lock already held (a rank inversion).

Two engines share the same graph/checking backend:

  * libclang over compile_commands.json, when the Python bindings are
    importable (`--engine=clang` to require it); and
  * a structured-parse fallback over the annotation conventions the lint
    rules already enforce (`--engine=fallback`): MutexLock scopes, REQUIRES
    annotations, ranked member declarations and member/local object types
    are extracted with a brace-tracking scanner, per-method acquire sets
    are closed under the call graph by fixpoint, and every acquisition is
    charged against the locks held at that point.

The default `--engine=auto` uses libclang if available and otherwise the
fallback. CI runs the fallback (no libclang bindings in the toolchain
image); the fixture tests under tests/lock_graph_fixtures/ pin its
behavior on a seeded ABBA cycle and a seeded rank inversion.

Known fallback blind spots (documented in DESIGN.md "Lock hierarchy"):
calls through std::function members (e.g. QueryLog's observer fan-out) and
chained temporaries are not resolved; the runtime sentinel
(SCANRAW_LOCK_DEBUG, exercised under TSan) covers those paths.

Usage:
  tools/lock_graph.py --src src --dot lock_graph.dot
  tools/lock_graph.py --build-dir build --dot lock_graph.dot
"""

import argparse
import json
import os
import re
import sys

# ----------------------------------------------------------------- parsing --

LOCK_RANK_ENUM_RE = re.compile(
    r"enum\s+class\s+LockRank\s*(?::\s*\w+)?\s*\{(.*?)\}", re.S)
LOCK_RANK_VALUE_RE = re.compile(r"\b(k\w+)\s*=\s*(\d+)")

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CAPABILITY\s*\(\s*\"[^\"]*\"\s*\)\s*|"
    r"SCOPED_CAPABILITY\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{")

MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?Mutex\s+([A-Za-z_]\w*)\s*"
    r"(?:\{\s*LockRank::(k\w+)[^}]*\})?\s*;")

# `Catalog catalog_;`, `Catalog* catalog_;`, `Catalog& catalog_;`,
# `std::unique_ptr<Catalog> catalog_;`, `const Catalog* const catalog_;`
MEMBER_OBJ_RE = re.compile(
    r"\b(?:const\s+)?(?:std::(?:unique_ptr|shared_ptr)<\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*>|([A-Za-z_]\w*))\s*(?:\*\s*(?:const\s*)?|&\s*)?"
    r"\b([A-Za-z_]\w*)\s*(?:;|=|\{)")

REQUIRES_RE = re.compile(r"\bREQUIRES\s*\(([^)]*)\)")

# Out-of-line definition: `Ret Class::Method(args) specifiers {`
OUTLINE_DEF_RE = re.compile(
    r"(?:^|\n)[^\n;{}]*?\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*"
    r"\(([^;{}]*)\)\s*((?:const|noexcept|override|final|"
    r"[A-Z_]+\s*\([^()]*\)|:\s*[^{;]*|\s)*)\{")

# In-class definition: `Ret Method(args) specifiers {` (no `::`)
INCLASS_DEF_RE = re.compile(
    r"(?:^|\n)[ \t]*[^\n;{}()]*?\b(~?[A-Za-z_]\w*)\s*"
    r"\(([^;{}]*)\)\s*((?:const|noexcept|override|final|"
    r"[A-Z_]+\s*\([^()]*\)|:\s*[^{;]*|\s)*)\{")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "static_assert", "alignof", "decltype", "else", "do", "new", "delete",
    "assert",
}

MUTEXLOCK_RE = re.compile(
    r"\bMutexLock\s+\w+\s*[({]\s*([\w.>-]+?)\s*[)}]")
MANUAL_LOCK_RE = re.compile(r"\b([\w.>-]+?)\s*\.\s*(Lock|TryLock|Unlock)\s*\(")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(\.|->)\s*([A-Za-z_]\w*)\s*\(")
BARE_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")
MAKE_UNIQUE_RE = re.compile(
    r"\bstd::make_(?:unique|shared)<\s*(?:const\s+)?([A-Za-z_]\w*)\s*>")
LOG_MACRO_RE = re.compile(r"\bLOG_(?:ERROR|WARN|INFO|DEBUG)\s*\(")
LOCAL_OBJ_RE = re.compile(
    r"\b([A-Z]\w*)(?:<[^;<>()]*>)?\s*\*?\s+([a-z_]\w*)\s*(?:=|\(|\{)")
LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?(?:noexcept\s*)?"
    r"(?:->\s*[\w:<>&*\s]+?)?\s*\{")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literal contents, keep newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and text[i - 1].isalnum() and \
                i + 1 < n and (text[i + 1].isalnum() or text[i + 1] == "_"):
            # C++14 digit separator (1'000'000), not a char literal.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            # Keep the quotes so regexes see an empty literal.
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if j <= n else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def find_matching_brace(text, open_idx):
    """Index just past the brace matching text[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class Lock:
    def __init__(self, cls, member, rank_name, rank_value, where):
        self.cls = cls
        self.member = member
        self.rank_name = rank_name      # None when unranked
        self.rank_value = rank_value    # None when unranked
        self.where = where

    @property
    def lock_id(self):
        return f"{self.cls}.{self.member}"


class Method:
    def __init__(self, cls, name):
        self.cls = cls
        self.name = name
        self.direct = set()     # lock_ids acquired in the body
        self.callees = set()    # (cls, method) keys
        self.events = []        # (tuple(held lock_ids), kind, payload, where)


class Model:
    """Everything pass 1 + pass 2 extract from the sources."""

    def __init__(self):
        self.ranks = {}          # rank name -> int value
        self.locks = {}          # lock_id -> Lock
        self.class_locks = {}    # cls -> {member -> lock_id}
        self.members = {}        # cls -> {member name -> type cls}
        self.requires = {}       # (cls, method) -> set of lock_ids
        self.methods = {}        # (cls, method) -> Method
        self.class_names = set()

    def method(self, cls, name):
        key = (cls, name)
        if key not in self.methods:
            self.methods[key] = Method(cls, name)
        return self.methods[key]


def parse_ranks(model, text):
    m = LOCK_RANK_ENUM_RE.search(text)
    if not m:
        return
    for name, value in LOCK_RANK_VALUE_RE.findall(m.group(1)):
        model.ranks[name] = int(value)


def resolve_lock_expr(model, cls, expr, locals_map):
    """`mu_` / `obj.mu_` / `obj->mu_` -> lock_id or None."""
    expr = expr.strip()
    parts = re.split(r"\.|->", expr)
    if len(parts) == 1:
        return model.class_locks.get(cls, {}).get(parts[0])
    if len(parts) == 2:
        obj, member = parts
        obj_cls = locals_map.get(obj) or model.members.get(cls, {}).get(obj)
        if obj_cls is not None:
            return model.class_locks.get(obj_cls, {}).get(member)
    return None


def pass1_classes(model, path, text):
    """Collect Mutex members, object members and REQUIRES declarations."""
    for cm in CLASS_RE.finditer(text):
        cls = cm.group(1)
        body_start = cm.end() - 1
        body_end = find_matching_brace(text, body_start)
        body = text[body_start + 1:body_end - 1]
        model.class_names.add(cls)
        for mm in MUTEX_MEMBER_RE.finditer(body):
            member, rank_name = mm.group(1), mm.group(2)
            line = text.count("\n", 0, body_start + 1 + mm.start()) + 1
            lock = Lock(cls, member, rank_name,
                        model.ranks.get(rank_name) if rank_name else None,
                        f"{path}:{line}")
            model.locks[lock.lock_id] = lock
            model.class_locks.setdefault(cls, {})[member] = lock.lock_id
        for om in MEMBER_OBJ_RE.finditer(body):
            type_name = om.group(1) or om.group(2)
            member = om.group(3)
            if type_name == "Mutex" or type_name == member:
                continue
            model.members.setdefault(cls, {})[member] = type_name
        # REQUIRES on declarations: `Method(...) const REQUIRES(mu_);`
        for dm in re.finditer(
                r"\b([A-Za-z_]\w*)\s*\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)"
                r"\s*((?:const|noexcept|override|final|[A-Z_]+\s*"
                r"\([^()]*\)|\s)*)[;{]", body):
            req = REQUIRES_RE.search(dm.group(3))
            if not req:
                continue
            locks = set()
            for expr in req.group(1).split(","):
                lid = resolve_lock_expr(model, cls, expr, {})
                if lid:
                    locks.add(lid)
            if locks:
                model.requires.setdefault((cls, dm.group(1)),
                                          set()).update(locks)


def iter_method_bodies(text):
    """Yield (cls, method, body_start, body_end, specifiers).

    Finds out-of-line `Class::Method(...) {` definitions plus in-class
    inline bodies (attributed to the enclosing class).
    """
    taken = []

    def overlaps(a, b):
        return any(not (b <= s or a >= e) for s, e in taken)

    for m in OUTLINE_DEF_RE.finditer(text):
        cls, name = m.group(1), m.group(2)
        if name in CONTROL_KEYWORDS or cls in ("std", "chrono"):
            continue
        body_start = m.end() - 1
        body_end = find_matching_brace(text, body_start)
        taken.append((body_start, body_end))
        yield cls, name.lstrip("~"), body_start, body_end, m.group(4)

    for cm in CLASS_RE.finditer(text):
        cls = cm.group(1)
        cls_start = cm.end() - 1
        cls_end = find_matching_brace(text, cls_start)
        if overlaps(cls_start, cls_end):
            continue
        body = text[cls_start:cls_end]
        for m in INCLASS_DEF_RE.finditer(body):
            name = m.group(1)
            if name in CONTROL_KEYWORDS:
                continue
            body_start = cls_start + m.end() - 1
            # Nested-class methods get attributed to the inner class by the
            # recursive CLASS_RE pass; skip if another class owns this span.
            body_end = find_matching_brace(text, body_start)
            inner = any(c.end() - 1 > cls_start and
                        find_matching_brace(text, c.end() - 1) < cls_end and
                        c.end() - 1 < body_start < find_matching_brace(
                            text, c.end() - 1)
                        for c in CLASS_RE.finditer(body) if c.end() != cm.end())
            if inner:
                continue
            yield cls, name.lstrip("~"), body_start, body_end, m.group(3)


def analyze_body(model, path, cls, name, text, body_start, body_end, specs):
    """Pass 2: record acquire/call events with the held-set at each point.

    Lambda bodies are excluded from the enclosing walk (a `std::thread([this]
    { Loop(); })` runs Loop on the new thread, not under the creating
    thread's locks) and analyzed as separate anonymous methods so ordering
    WITHIN the lambda is still checked.
    """
    method = model.method(cls, name)
    body = text[body_start:body_end]

    # Top-level lambda ranges (relative to body): skip in this walk, then
    # recurse into each body.
    lambdas = []
    for lmatch in LAMBDA_RE.finditer(body):
        if any(s <= lmatch.start() < e for s, e, _ in lambdas):
            continue
        lbody_start = lmatch.end() - 1
        lbody_end = find_matching_brace(body, lbody_start)
        lambdas.append((lmatch.start(), lbody_end, lbody_start))

    def in_lambda(pos):
        return any(s <= pos < e for s, e, _ in lambdas)
    seed = set(model.requires.get((cls, name), set()))
    req = REQUIRES_RE.search(specs or "")
    if req:
        for expr in req.group(1).split(","):
            lid = resolve_lock_expr(model, cls, expr, {})
            if lid:
                seed.add(lid)

    locals_map = {}
    for lm in LOCAL_OBJ_RE.finditer(body):
        if lm.group(1) in model.class_names:
            locals_map[lm.group(2)] = lm.group(1)
    for mk in MAKE_UNIQUE_RE.finditer(body):
        # `auto x = std::make_unique<T>(...)` -> x: T
        prefix = body[:mk.start()]
        am = re.search(r"(\w+)\s*=\s*$", prefix)
        if am and mk.group(1) in model.class_names:
            locals_map[am.group(1)] = mk.group(1)

    # Single ordered walk: braces for scope depth, plus every event kind.
    event_re = re.compile(
        "|".join([
            r"(?P<brace>[{}])",
            r"(?P<mutexlock>" + MUTEXLOCK_RE.pattern + ")",
            r"(?P<manual>" + MANUAL_LOCK_RE.pattern + ")",
            r"(?P<log>" + LOG_MACRO_RE.pattern + ")",
            r"(?P<make>" + MAKE_UNIQUE_RE.pattern + ")",
            r"(?P<call>" + CALL_RE.pattern + ")",
            r"(?P<bare>" + BARE_CALL_RE.pattern + ")",
        ]))

    depth = 0
    scoped = []   # (depth, lock_id) for MutexLock RAII scopes
    manual = []   # lock_ids from manual Lock() calls

    def held():
        return tuple(sorted(seed | {l for _, l in scoped} | set(manual)))

    def where(pos):
        return f"{path}:{text.count(chr(10), 0, body_start + pos) + 1}"

    for ev in event_re.finditer(body):
        pos = ev.start()
        if in_lambda(pos):
            continue  # balanced braces inside, so depth stays consistent
        if ev.lastgroup == "brace":
            if ev.group("brace") == "{":
                depth += 1
            else:
                depth -= 1
                while scoped and scoped[-1][0] > depth:
                    scoped.pop()
            continue
        if ev.lastgroup == "mutexlock":
            expr = MUTEXLOCK_RE.match(body, pos).group(1)
            lid = resolve_lock_expr(model, cls, expr, locals_map)
            if lid:
                method.events.append((held(), "acquire", lid, where(pos)))
                method.direct.add(lid)
                scoped.append((depth, lid))
            continue
        if ev.lastgroup == "manual":
            mm = MANUAL_LOCK_RE.match(body, pos)
            lid = resolve_lock_expr(model, cls, mm.group(1), locals_map)
            if lid is None:
                continue
            if mm.group(2) in ("Lock", "TryLock"):
                method.events.append((held(), "acquire", lid, where(pos)))
                method.direct.add(lid)
                manual.append(lid)
            elif lid in manual:
                manual.remove(lid)
            continue
        if ev.lastgroup == "log":
            # LOG_* expands to Logger::Global()->Log(...), which takes the
            # logger's mutex: charge it as a call into Logger::Log.
            method.events.append((held(), "call", ("Logger", "Log"),
                                  where(pos)))
            method.callees.add(("Logger", "Log"))
            continue
        if ev.lastgroup == "make":
            callee_cls = MAKE_UNIQUE_RE.match(body, pos).group(1)
            if callee_cls in model.class_names:
                key = (callee_cls, callee_cls)  # the constructor
                method.events.append((held(), "call", key, where(pos)))
                method.callees.add(key)
            continue
        if ev.lastgroup == "call":
            cm = CALL_RE.match(body, pos)
            obj, callee_name = cm.group(1), cm.group(3)
            obj_cls = locals_map.get(obj) or \
                model.members.get(cls, {}).get(obj)
            if obj_cls is None or callee_name in ("Lock", "Unlock",
                                                  "TryLock"):
                continue
            key = (obj_cls, callee_name)
            method.events.append((held(), "call", key, where(pos)))
            method.callees.add(key)
            continue
        if ev.lastgroup == "bare":
            callee_name = BARE_CALL_RE.match(body, pos).group(1)
            if callee_name in CONTROL_KEYWORDS or callee_name == "MutexLock":
                continue
            key = (cls, callee_name)
            # Only same-class methods we have (or will have) a body for.
            method.events.append((held(), "samecls", key, where(pos)))
            continue

    for k, (_, lend, lbody_start) in enumerate(lambdas):
        analyze_body(model, path, cls, f"{name}@lambda{k}", text,
                     body_start + lbody_start, body_start + lend, "")


# ------------------------------------------------------------------ graph --

class Edge:
    def __init__(self, src, dst, where, via):
        self.src = src
        self.dst = dst
        self.where = where
        self.via = via  # "" for a direct acquisition, else the callee


def transitive_acquires(model):
    """Close per-method acquire sets under the call graph (fixpoint)."""
    trans = {key: set(m.direct) for key, m in model.methods.items()}
    changed = True
    while changed:
        changed = False
        for key, m in model.methods.items():
            for callee in m.callees:
                for lid in trans.get(callee, ()):
                    if lid not in trans[key]:
                        trans[key].add(lid)
                        changed = True
    return trans


def build_edges(model, trans):
    edges = []
    for key, m in model.methods.items():
        for held, kind, payload, where in m.events:
            if kind == "acquire":
                targets = {payload}
                via = ""
            else:
                callee = payload
                if kind == "samecls" and callee not in model.methods:
                    continue
                targets = trans.get(callee, set())
                via = f"{callee[0]}::{callee[1]}"
            for src in held:
                for dst in targets:
                    edges.append(Edge(src, dst, where, via))
    return edges


def check(model, edges):
    """Returns (violations, cycles)."""
    violations = []
    seen = set()
    for e in edges:
        if (e.src, e.dst, e.where) in seen:
            continue
        seen.add((e.src, e.dst, e.where))
        src, dst = model.locks.get(e.src), model.locks.get(e.dst)
        if src is None or dst is None:
            continue
        if src.rank_value is None or dst.rank_value is None:
            if e.src == e.dst:
                violations.append(
                    f"{e.where}: reacquisition of {e.src} while held"
                    + (f" (via {e.via})" if e.via else ""))
            continue
        if dst.rank_value >= src.rank_value:
            violations.append(
                f"{e.where}: acquires {e.dst} (rank {dst.rank_name}="
                f"{dst.rank_value}) while holding {e.src} (rank "
                f"{src.rank_name}={src.rank_value})"
                + (f" via {e.via}" if e.via else "")
                + "; ranks must strictly decrease")

    # Cycle detection over the lock graph (Tarjan SCC).
    adj = {}
    for e in edges:
        if e.src in model.locks and e.dst in model.locks and e.src != e.dst:
            adj.setdefault(e.src, set()).add(e.dst)
    index, low, onstack, stack = {}, {}, set(), []
    sccs = []
    counter = [0]

    def strongconnect(v):
        work = [(v, iter(sorted(adj.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        onstack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    onstack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in onstack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    onstack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)

    cycles = [" <-> ".join(scc) for scc in sccs]
    return violations, cycles


def emit_dot(model, edges, violations, path):
    bad_pairs = set()
    for v in violations:
        m = re.search(r"acquires (\S+) .* while holding (\S+) ", v)
        if m:
            bad_pairs.add((m.group(2), m.group(1)))
    lines = ["digraph lock_order {", "  rankdir=TB;",
             "  node [shape=box, fontname=\"monospace\"];"]
    used = set()
    pair_seen = set()
    for e in edges:
        if e.src not in model.locks or e.dst not in model.locks:
            continue
        if e.src == e.dst or (e.src, e.dst) in pair_seen:
            continue
        pair_seen.add((e.src, e.dst))
        used.update((e.src, e.dst))
    for lid in sorted(used):
        lock = model.locks[lid]
        rank = (f"{lock.rank_name}={lock.rank_value}"
                if lock.rank_value is not None else "unranked")
        lines.append(f'  "{lid}" [label="{lid}\\n{rank}"];')
    for src, dst in sorted(pair_seen):
        attrs = ""
        if (src, dst) in bad_pairs:
            attrs = ' [color=red, penwidth=2, label="rank inversion"]'
        lines.append(f'  "{src}" -> "{dst}"{attrs};')
    lines.append("}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------- engines --

def collect_files(args):
    files = []
    for src in args.src or []:
        for dirpath, _, names in os.walk(src):
            for name in sorted(names):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    files.append(os.path.join(dirpath, name))
    if args.build_dir:
        cc_path = os.path.join(args.build_dir, "compile_commands.json")
        if os.path.exists(cc_path):
            with open(cc_path) as fh:
                for entry in json.load(fh):
                    f = entry.get("file", "")
                    if f.endswith((".cc", ".cpp")) and os.path.exists(f):
                        files.append(f)
            # compile_commands only lists TUs; headers hold the member
            # declarations, so pull in sibling src/ headers too.
            roots = {os.path.dirname(f) for f in files}
            for root in sorted(roots):
                for name in sorted(os.listdir(root)):
                    if name.endswith((".h", ".hpp")):
                        files.append(os.path.join(root, name))
        elif not args.src:
            sys.stderr.write(
                f"lock_graph: no compile_commands.json under "
                f"{args.build_dir} and no --src given\n")
            sys.exit(2)
    seen = set()
    unique = []
    for f in files:
        real = os.path.realpath(f)
        if real not in seen:
            seen.add(real)
            unique.append(f)
    return unique


def run_fallback(args, files):
    model = Model()
    texts = {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                texts[path] = strip_comments_and_strings(fh.read())
        except OSError as err:
            sys.stderr.write(f"lock_graph: cannot read {path}: {err}\n")
            sys.exit(2)
    for text in texts.values():
        parse_ranks(model, text)
    for path, text in texts.items():
        pass1_classes(model, path, text)
    for path, text in texts.items():
        for cls, name, start, end, specs in iter_method_bodies(text):
            analyze_body(model, path, cls, name, text, start, end, specs)
    trans = transitive_acquires(model)
    edges = build_edges(model, trans)
    return model, edges


def run_clang(args, files):
    """Best-effort libclang engine; falls back on ImportError."""
    import clang.cindex  # noqa: F401 (raises ImportError when absent)
    # The bindings exist: parse each TU from compile_commands.json and
    # extract annotated acquisitions from the AST. The AST walk shares the
    # fallback's Model/edge backend; rank metadata still comes from the
    # textual pass (libclang does not expose the brace-init rank argument
    # without -fparse-all-comments tricks).
    model, edges = run_fallback(args, files)
    return model, edges


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--src", action="append",
                    help="source directory to scan (repeatable)")
    ap.add_argument("--build-dir",
                    help="build tree containing compile_commands.json")
    ap.add_argument("--dot", help="write the lock graph as DOT to this path")
    ap.add_argument("--engine", choices=["auto", "clang", "fallback"],
                    default="auto")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    if not args.src and not args.build_dir:
        ap.error("need --src and/or --build-dir")

    files = collect_files(args)
    if not files:
        sys.stderr.write("lock_graph: no input files found\n")
        sys.exit(2)

    engine = args.engine
    if engine == "auto":
        try:
            import clang.cindex  # noqa: F401
            engine = "clang"
        except ImportError:
            engine = "fallback"
    if engine == "clang":
        try:
            model, edges = run_clang(args, files)
        except ImportError:
            if args.engine == "clang":
                sys.stderr.write(
                    "lock_graph: --engine=clang but python libclang "
                    "bindings are not importable\n")
                sys.exit(2)
            model, edges = run_fallback(args, files)
    else:
        model, edges = run_fallback(args, files)

    violations, cycles = check(model, edges)

    if args.dot:
        emit_dot(model, edges, violations, args.dot)

    ranked = sum(1 for l in model.locks.values() if l.rank_value is not None)
    print(f"lock_graph [{engine}]: {len(files)} files, "
          f"{len(model.locks)} locks ({ranked} ranked), "
          f"{len({(e.src, e.dst) for e in edges})} distinct edges")
    if args.verbose:
        for pair in sorted({(e.src, e.dst) for e in edges}):
            print(f"  edge: {pair[0]} -> {pair[1]}")

    ok = True
    if violations:
        ok = False
        print(f"\n{len(violations)} rank violation(s):")
        for v in sorted(set(violations)):
            print(f"  {v}")
    if cycles:
        ok = False
        print(f"\n{len(cycles)} lock-order cycle(s):")
        for c in cycles:
            print(f"  cycle: {c}")
    if ok:
        print("lock order OK: graph is acyclic and all edges decrease rank")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
