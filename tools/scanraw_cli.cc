// scanraw_cli — run SQL queries directly over raw files from the shell.
//
//   scanraw_cli --db /tmp/demo.db ...
//               --table events=/data/events.csv=csv16 ...
//               "SELECT SUM(C0+C1) FROM events WHERE C2 BETWEEN 0 AND 9"
//
// Options:
//   --db PATH             database storage file (required)
//   --table NAME=PATH=FMT attach a raw file; FMT is csv<K> (K uint32
//                         columns) or sam (11-field SAM-like, tab text)
//   --catalog PATH        load catalog if it exists; save on exit
//   --bandwidth-mb N      emulate an N MB/s disk (default unlimited)
//   --policy P            speculative|external|full|invisible|buffered
//   --workers N           conversion worker threads (default 4)
//   --chunk-rows N        rows per chunk (default 65536)
//   --no-parallel-tokenize  frozen sequential TOKENIZE (parallel is default)
//   --quoted-csv          RFC-4180 quoted fields for delimited-text tables
//   --persist-posmap      persist each table's positional maps to a
//                         checksummed sidecar (CATALOG.posmap.TABLE, saved
//                         with the catalog and after cold scans) so a warm
//                         restart skips TOKENIZE for already-mapped chunks;
//                         implies the positional-map cache; requires
//                         --catalog to survive a restart
//   --metrics[=json|text] after the statements, dump the telemetry registry
//                         (stage latency histograms with p50/p95/p99, cache
//                         and disk-arbiter counters, resource-advice series);
//                         default format is text
//   --explain[=json|text] EXPLAIN ANALYZE: after each statement, print the
//                         per-stage span profile (busy/blocked/idle, critical
//                         path), chunk provenance (cache/db/raw/skipped) and
//                         speculative-loading payoff; default format is text
//   --progress            print a live progress line (bytes converted, ETA
//                         from rolling throughput) to stderr while a query
//                         runs
//   --progress-interval-ms N  progress reporting period (default 200)
//   --trace-out PATH      write the chunk-lifecycle trace as a Chrome
//                         trace_event JSON array (load via chrome://tracing)
//   --sample-interval-ms N  period of the §3.3 resource-advice sampler
//                         (default 2 when --metrics/--trace-out is given)
//   --query-log PATH      append one JSONL event per query (spec, stage
//                         timings, chunk provenance, speculative payoff) to
//                         the persistent query log at PATH; on startup any
//                         persisted workload history (PATH.history, or
//                         CATALOG.history with --catalog) is loaded and the
//                         log replayed into it, and the updated history is
//                         saved on exit
//   --advisor             history-driven speculative loading: rank columns
//                         by the workload history and store only the hot
//                         subset of each chunk (requires --query-log;
//                         results are byte-identical either way)
//   --stats-port N        serve /metrics (Prometheus text), /statusz and
//                         /healthz over HTTP on 127.0.0.1:N for the process
//                         lifetime; 0 picks an ephemeral port (printed)
//   --log-level L         debug|info|warn|error|off threshold for the
//                         structured logger (overrides SCANRAW_LOG_LEVEL)
//   --watchdog-ms N       stall watchdog: a pipeline stage active but
//                         making no progress for N ms produces a structured
//                         report and a flight-recorder dump
//   --watchdog-abort      abort the process after a stall report
//   --timeseries-interval-ms N  cadence of the rate rings behind /metrics
//                         (default 1000; 0 disables sampling)
//   --metrics-interval-ms N  print a delta-aware throughput snapshot
//                         (rows/s, bytes/s, cache hit rate) every N ms
//                         while statements run
//   --flight-dump[=PATH]  arm the crash-dump path of the always-on flight
//                         recorder (dump written to PATH, or stderr, when
//                         the process dies at a kill point) and dump the
//                         rings at normal exit too
//
// Subcommands:
//   stats --query-log PATH   offline workload report from the query log:
//                            per-table/per-column access frequencies,
//                            selectivities, wall-time percentiles, and
//                            speculative-loading payoff totals
//
// Fault injection (testing the crash-safety layer; all deterministic for a
// given --fault-seed):
//   --fault-seed N              PRNG seed for the fault plan (default 1)
//   --fault-path-substr S       only inject on files whose path contains S
//   --fault-read-error-rate F   probability a read fails
//   --fault-short-read-rate F   probability a read returns fewer bytes
//   --fault-append-error-rate F probability an append fails (torn prefix)
//   --fault-sync-error-rate F   probability a sync fails
//   --fault-errno eio|enospc    errno carried by injected errors
//   --fault-kill-point NAME     _exit(42) at the named protocol point
//   --fault-kill-append-at N    _exit(42) mid-append on the Nth append
//   --fault-read-delay-ms N     every matching read sleeps N ms (a hung
//                               device; pairs with --watchdog-ms)
//
// Remaining arguments are SQL statements, executed in order; with none,
// statements are read from stdin (one per line).

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/string_util.h"
#include "db/recovery.h"
#include "format/parser.h"
#include "genomics/sam.h"
#include "io/fault_injection.h"
#include "io/file.h"
#include "obs/explain.h"
#include "obs/flight_recorder.h"
#include "obs/load_advisor.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/progress.h"
#include "obs/query_log.h"
#include "obs/telemetry.h"
#include "obs/workload_history.h"
#include "scanraw/scanraw_manager.h"
#include "sql/sql_parser.h"

namespace scanraw {
namespace {

struct CliOptions {
  std::string db_path;
  std::string catalog_path;
  uint64_t bandwidth_mb = 0;
  bool metrics = false;
  bool metrics_json = false;
  bool explain = false;
  bool explain_json = false;
  bool progress = false;
  std::string query_log_path;
  bool advisor = false;
  bool flight_dump = false;
  std::string flight_dump_path;  // empty = stderr
  std::string trace_path;
  int sample_interval_ms = -1;  // -1 = default (2 when telemetry requested)
  int stats_port = -1;          // -1 = no stats server; 0 = ephemeral
  std::string log_level;
  int64_t watchdog_ms = 0;
  bool watchdog_abort = false;
  int metrics_interval_ms = 0;  // 0 = no periodic snapshot printer
  bool fault_enabled = false;
  FaultPlan fault_plan;
  ScanRawOptions scan_options;
  struct TableArg {
    std::string name;
    std::string path;
    std::string format;
  };
  std::vector<TableArg> tables;
  std::vector<std::string> statements;
};

void Usage() {
  std::fprintf(stderr,
               "usage: scanraw_cli --db PATH [--table NAME=PATH=FMT]... "
               "[--catalog PATH]\n"
               "                   [--bandwidth-mb N] [--policy P] "
               "[--workers N] [--chunk-rows N]\n"
               "                   [--no-parallel-tokenize] [--quoted-csv] "
               "[--persist-posmap]\n"
               "                   [--metrics[=json|text]] "
               "[--explain[=json|text]] [--progress]\n"
               "                   [--progress-interval-ms N] "
               "[--trace-out PATH] [--sample-interval-ms N]\n"
               "                   [--fault-seed N] [--fault-path-substr S] "
               "[--fault-*-rate F]\n"
               "                   [--fault-errno eio|enospc] "
               "[--fault-kill-point NAME]\n"
               "                   [--query-log PATH] [--advisor] "
               "[--flight-dump[=PATH]]\n"
               "                   [--stats-port N] [--log-level L] "
               "[--watchdog-ms N] [--watchdog-abort]\n"
               "                   [--timeseries-interval-ms N] "
               "[--metrics-interval-ms N]\n"
               "                   [--fault-kill-append-at N] "
               "[--fault-read-delay-ms N] [SQL]...\n"
               "       scanraw_cli stats --query-log PATH\n");
}

Result<LoadPolicy> ParsePolicy(const std::string& name) {
  if (name == "speculative") return LoadPolicy::kSpeculativeLoading;
  if (name == "external") return LoadPolicy::kExternalTables;
  if (name == "full") return LoadPolicy::kFullLoad;
  if (name == "invisible") return LoadPolicy::kInvisibleLoading;
  if (name == "buffered") return LoadPolicy::kBufferedLoading;
  return Status::InvalidArgument("unknown policy: " + name);
}

struct TableFormat {
  Schema schema;
  RawFormat raw_format = RawFormat::kDelimitedText;
};

Result<TableFormat> SchemaForFormat(const std::string& format) {
  if (format == "sam") return TableFormat{SamSchema()};
  if (format.rfind("csv", 0) == 0) {
    auto cols = ParseUint32(std::string_view(format).substr(3));
    if (cols.ok() && *cols > 0) {
      return TableFormat{Schema::AllUint32(*cols)};
    }
  }
  if (format.rfind("jsonl", 0) == 0) {
    auto cols = ParseUint32(std::string_view(format).substr(5));
    if (cols.ok() && *cols > 0) {
      return TableFormat{Schema::AllUint32(*cols), RawFormat::kJsonLines};
    }
  }
  return Status::InvalidArgument("unknown table format: " + format +
                                 " (use csv<K>, jsonl<K> or sam)");
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  options.scan_options.num_workers = 4;
  options.scan_options.chunk_rows = 1 << 16;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(arg + " requires a value");
      }
      return std::string(argv[++i]);
    };
    if (arg == "--db") {
      SCANRAW_ASSIGN_OR_RETURN(options.db_path, next_value());
    } else if (arg == "--catalog") {
      SCANRAW_ASSIGN_OR_RETURN(options.catalog_path, next_value());
    } else if (arg == "--bandwidth-mb") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto mb = ParseUint32(v);
      if (!mb.ok()) return mb.status();
      options.bandwidth_mb = *mb;
    } else if (arg == "--policy") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      SCANRAW_ASSIGN_OR_RETURN(options.scan_options.policy, ParsePolicy(v));
    } else if (arg == "--workers") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok()) return n.status();
      options.scan_options.num_workers = *n;
    } else if (arg == "--chunk-rows") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok() || *n == 0) {
        return Status::InvalidArgument("bad --chunk-rows");
      }
      options.scan_options.chunk_rows = *n;
    } else if (arg == "--parallel-tokenize") {
      options.scan_options.parallel_tokenize = true;
    } else if (arg == "--no-parallel-tokenize") {
      options.scan_options.parallel_tokenize = false;
    } else if (arg == "--quoted-csv") {
      options.scan_options.quoted_fields = true;
    } else if (arg == "--persist-posmap") {
      options.scan_options.persist_positional_maps = true;
      options.scan_options.cache_positional_maps = true;
    } else if (arg == "--metrics" || arg == "--metrics=text") {
      options.metrics = true;
      options.metrics_json = false;
    } else if (arg == "--metrics=json") {
      options.metrics = true;
      options.metrics_json = true;
    } else if (arg == "--explain" || arg == "--explain=text") {
      options.explain = true;
      options.explain_json = false;
    } else if (arg == "--explain=json") {
      options.explain = true;
      options.explain_json = true;
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--progress-interval-ms") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok() || *n == 0) {
        return Status::InvalidArgument("bad --progress-interval-ms");
      }
      options.progress = true;
      options.scan_options.progress_interval_ms = static_cast<int>(*n);
    } else if (arg == "--query-log") {
      SCANRAW_ASSIGN_OR_RETURN(options.query_log_path, next_value());
    } else if (arg == "--advisor") {
      options.advisor = true;
    } else if (arg == "--flight-dump") {
      options.flight_dump = true;
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      options.flight_dump = true;
      options.flight_dump_path = arg.substr(std::strlen("--flight-dump="));
    } else if (arg == "--trace-out") {
      SCANRAW_ASSIGN_OR_RETURN(options.trace_path, next_value());
    } else if (arg == "--sample-interval-ms") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok()) return n.status();
      options.sample_interval_ms = static_cast<int>(*n);
    } else if (arg == "--stats-port") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok() || *n > 65535) {
        return Status::InvalidArgument("bad --stats-port");
      }
      options.stats_port = static_cast<int>(*n);
    } else if (arg == "--log-level") {
      SCANRAW_ASSIGN_OR_RETURN(options.log_level, next_value());
      obs::LogLevel parsed;
      if (!obs::ParseLogLevel(options.log_level, &parsed)) {
        return Status::InvalidArgument(
            "--log-level expects debug|info|warn|error|off");
      }
    } else if (arg == "--watchdog-ms") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok() || *n == 0) {
        return Status::InvalidArgument("bad --watchdog-ms");
      }
      options.watchdog_ms = *n;
    } else if (arg == "--watchdog-abort") {
      options.watchdog_abort = true;
    } else if (arg == "--timeseries-interval-ms") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok()) return n.status();
      // 0 disables sampling (the option encodes that as negative).
      options.scan_options.timeseries_interval_ms =
          *n == 0 ? -1 : static_cast<int>(*n);
    } else if (arg == "--metrics-interval-ms") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto n = ParseUint32(v);
      if (!n.ok() || *n == 0) {
        return Status::InvalidArgument("bad --metrics-interval-ms");
      }
      options.metrics_interval_ms = static_cast<int>(*n);
    } else if (arg.rfind("--fault-", 0) == 0) {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      options.fault_enabled = true;
      auto rate = [&]() -> Result<double> {
        char* end = nullptr;
        double r = std::strtod(v.c_str(), &end);
        if (end != v.c_str() + v.size() || r < 0.0 || r > 1.0) {
          return Status::InvalidArgument("bad rate for " + arg + ": " + v);
        }
        return r;
      };
      if (arg == "--fault-seed") {
        auto n = ParseUint32(v);
        if (!n.ok()) return n.status();
        options.fault_plan.seed = *n;
      } else if (arg == "--fault-path-substr") {
        options.fault_plan.path_substring = v;
      } else if (arg == "--fault-read-error-rate") {
        SCANRAW_ASSIGN_OR_RETURN(options.fault_plan.read_error_rate, rate());
      } else if (arg == "--fault-short-read-rate") {
        SCANRAW_ASSIGN_OR_RETURN(options.fault_plan.short_read_rate, rate());
      } else if (arg == "--fault-append-error-rate") {
        SCANRAW_ASSIGN_OR_RETURN(options.fault_plan.append_error_rate,
                                 rate());
      } else if (arg == "--fault-sync-error-rate") {
        SCANRAW_ASSIGN_OR_RETURN(options.fault_plan.sync_error_rate, rate());
      } else if (arg == "--fault-errno") {
        if (v == "eio") {
          options.fault_plan.error_errno = EIO;
        } else if (v == "enospc") {
          options.fault_plan.error_errno = ENOSPC;
        } else {
          return Status::InvalidArgument("--fault-errno expects eio|enospc");
        }
      } else if (arg == "--fault-kill-point") {
        options.fault_plan.kill_point = v;
      } else if (arg == "--fault-kill-append-at") {
        auto n = ParseUint32(v);
        if (!n.ok() || *n == 0) {
          return Status::InvalidArgument("bad --fault-kill-append-at");
        }
        options.fault_plan.kill_append_at = *n;
      } else if (arg == "--fault-read-delay-ms") {
        auto n = ParseUint32(v);
        if (!n.ok()) return n.status();
        options.fault_plan.read_delay_ms = static_cast<int>(*n);
      } else {
        return Status::InvalidArgument("unknown flag: " + arg);
      }
    } else if (arg == "--table") {
      std::string v;
      SCANRAW_ASSIGN_OR_RETURN(v, next_value());
      auto parts = SplitString(v, '=');
      if (parts.size() != 3) {
        return Status::InvalidArgument(
            "--table expects NAME=PATH=FORMAT, got " + v);
      }
      options.tables.push_back(CliOptions::TableArg{
          std::string(parts[0]), std::string(parts[1]),
          std::string(parts[2])});
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      return Status::InvalidArgument("unknown flag: " + arg);
    } else {
      options.statements.push_back(arg);
    }
  }
  if (options.db_path.empty()) {
    return Status::InvalidArgument("--db is required");
  }
  if (options.advisor && options.query_log_path.empty()) {
    return Status::InvalidArgument(
        "--advisor requires --query-log (the history is built from it)");
  }
  const bool telemetry_requested =
      options.metrics || !options.trace_path.empty();
  if (options.sample_interval_ms < 0) {
    options.sample_interval_ms = telemetry_requested ? 2 : 0;
  }
  options.scan_options.resource_sample_interval_ms =
      options.sample_interval_ms;
  if (options.progress) {
    // The progress line goes to stderr so it interleaves cleanly with query
    // results on stdout (and with --explain=json output piped to a file).
    options.scan_options.progress_callback =
        [](const obs::QueryProgress& progress) {
          std::fprintf(stderr, "%s\n", progress.ToLine().c_str());
        };
  }
  return options;
}

// --metrics-interval-ms: a printer thread sampling the telemetry rate rings
// and emitting one delta-aware throughput line (rows/s, bytes/s, cache hit
// rate over the trailing window) per interval while statements run.
class MetricsPrinter {
 public:
  MetricsPrinter(obs::Telemetry* telemetry, int interval_ms)
      : telemetry_(telemetry), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~MetricsPrinter() {
    {
      MutexLock lock(mu_);
      stop_ = true;
      cv_.NotifyAll();
    }
    if (thread_.joinable()) thread_.join();
  }
  MetricsPrinter(const MetricsPrinter&) = delete;
  MetricsPrinter& operator=(const MetricsPrinter&) = delete;

 private:
  void Loop() {
    // The window spans a few intervals so one slow sample does not zero the
    // rates; deltas are computed inside the rings, not against a baseline.
    const int64_t window_nanos =
        static_cast<int64_t>(interval_ms_) * 4 * 1'000'000;
    while (true) {
      {
        MutexLock lock(mu_);
        if (stop_) return;
        cv_.WaitFor(lock, std::chrono::milliseconds(interval_ms_));
        if (stop_) return;
      }
      telemetry_->timeseries().SampleNow(RealClock::Instance()->NowNanos());
      std::string line = "rates:";
      for (const obs::TimeSeries::RateRow& row :
           telemetry_->timeseries().Rates(window_nanos)) {
        if (row.kind != obs::TimeSeries::Kind::kCounter) continue;
        line += StringPrintf(" %s=%.1f/s", row.name.c_str(),
                             row.rate_defined ? row.rate_per_sec : 0.0);
      }
      double hit_rate = 0.0;
      if (telemetry_->timeseries().CacheHitRate(window_nanos, &hit_rate)) {
        line += StringPrintf(" cache_hit_rate=%.2f", hit_rate);
      }
      // stderr, like the progress line, so stdout stays query results only.
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  obs::Telemetry* const telemetry_;
  const int interval_ms_;
  Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

void PrintResult(const QueryResult& result, double seconds, bool has_avg) {
  if (!result.groups.empty()) {
    std::printf("%-20s%-12s%s\n", "group", "count", "sum");
    for (const auto& [key, agg] : result.groups) {
      std::printf("%-20s%-12llu%llu\n", key.c_str(),
                  static_cast<unsigned long long>(agg.count),
                  static_cast<unsigned long long>(agg.sum));
    }
  } else if (has_avg) {
    std::printf("avg = %.4f\n", result.Average());
  } else {
    std::printf("sum = %llu\n",
                static_cast<unsigned long long>(result.total_sum));
  }
  for (const auto& [col, range] : result.column_ranges) {
    std::printf("col %zu: min = %lld, max = %lld\n", col,
                static_cast<long long>(range.min_value),
                static_cast<long long>(range.max_value));
  }
  std::printf("-- %llu rows matched of %llu scanned (%.3f s)\n",
              static_cast<unsigned long long>(result.rows_matched),
              static_cast<unsigned long long>(result.rows_scanned), seconds);
}

// `scanraw_cli stats --query-log PATH`: offline workload report. Reads the
// log (both generations), folds it into a history, and prints what the
// load advisor would see, plus wall-time percentiles and payoff totals.
int RunStats(int argc, char** argv) {
  std::string log_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--query-log" && i + 1 < argc) {
      log_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: scanraw_cli stats --query-log PATH\n");
      return 2;
    }
  }
  if (log_path.empty()) {
    std::fprintf(stderr, "usage: scanraw_cli stats --query-log PATH\n");
    return 2;
  }
  obs::QueryLog::LoadStats load_stats;
  auto events = obs::QueryLog::ReadAll(log_path, &load_stats);
  if (!events.ok()) {
    std::fprintf(stderr, "error: %s\n", events.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "query log %s: v%d, %llu generation(s), %llu event(s), "
      "%llu torn + %llu corrupt line(s) dropped\n",
      log_path.c_str(), load_stats.version,
      static_cast<unsigned long long>(load_stats.generations),
      static_cast<unsigned long long>(load_stats.events),
      static_cast<unsigned long long>(load_stats.dropped_torn),
      static_cast<unsigned long long>(load_stats.dropped_corrupt));

  obs::WorkloadHistory history;
  obs::Histogram wall_micros;
  uint64_t failures = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t useful_bytes = 0;
  uint64_t advisor_queries = 0;
  uint64_t paid_off = 0;
  for (const obs::QueryLogEvent& event : *events) {
    history.Observe(event);
    wall_micros.Record(static_cast<uint64_t>(event.wall_seconds * 1e6));
    if (event.status != "ok") ++failures;
    bytes_read += event.bytes_read;
    bytes_written += event.bytes_written;
    useful_bytes += event.useful_bytes_written;
    if (event.advisor_used) ++advisor_queries;
    if (event.speculation_paid_off) ++paid_off;
  }
  std::printf("%s", history.Summary().c_str());
  if (wall_micros.count() > 0) {
    std::printf(
        "wall time: p50 %.1fms  p95 %.1fms  p99 %.1fms  (mean %.1fms, "
        "%llu queries, %llu failed)\n",
        wall_micros.Quantile(0.50) / 1e3, wall_micros.Quantile(0.95) / 1e3,
        wall_micros.Quantile(0.99) / 1e3, wall_micros.mean() / 1e3,
        static_cast<unsigned long long>(wall_micros.count()),
        static_cast<unsigned long long>(failures));
  }
  std::printf(
      "io: %llu bytes read, %llu written (%llu useful to the workload)\n",
      static_cast<unsigned long long>(bytes_read),
      static_cast<unsigned long long>(bytes_written),
      static_cast<unsigned long long>(useful_bytes));
  std::printf("speculation: paid off in %llu event(s); advisor filtered "
              "writes in %llu\n",
              static_cast<unsigned long long>(paid_off),
              static_cast<unsigned long long>(advisor_queries));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "stats") == 0) {
    return RunStats(argc, argv);
  }
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 options.status().ToString().c_str());
    Usage();
    return 2;
  }

  if (!options->log_level.empty()) {
    obs::LogLevel level = obs::LogLevel::kInfo;
    obs::ParseLogLevel(options->log_level, &level);  // validated in ParseArgs
    obs::Logger::Global()->SetThreshold(level);
  }

  // Armed before fault injection so a kill point's crash dump lands at the
  // requested path rather than stderr.
  if (options->flight_dump && !options->flight_dump_path.empty()) {
    obs::FlightRecorder::Global()->SetCrashDumpPath(
        options->flight_dump_path.c_str());
  }

  // Installed before the manager so the database file itself is subject to
  // the plan; alive until exit so the catalog save is too.
  std::optional<ScopedFaultInjection> fault_injection;
  if (options->fault_enabled) {
    fault_injection.emplace(options->fault_plan);
  }

  // Declared before the manager: operators (and their advisor) must never
  // outlive the history they rank from.
  std::shared_ptr<obs::WorkloadHistory> history;
  std::unique_ptr<obs::QueryLog> query_log;
  std::string history_path;

  ScanRawManager::Config config;
  config.db_path = options->db_path;
  config.disk_bandwidth = options->bandwidth_mb << 20;
  config.watchdog_ms = options->watchdog_ms;
  config.watchdog_abort = options->watchdog_abort;
  // --flight-dump=PATH doubles as the watchdog's dump destination; without
  // it the watchdog falls back to SCANRAW_FLIGHT_DUMP, then stderr.
  config.watchdog_dump_path = options->flight_dump_path;
  const bool recovering = !options->catalog_path.empty() &&
                          FileExists(options->catalog_path) &&
                          FileExists(options->db_path);
  config.reuse_existing_db = recovering;
  auto manager = ScanRawManager::Create(config);
  if (!manager.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  if (recovering) {
    Status s = (*manager)->LoadCatalog(options->catalog_path);
    if (!s.ok()) {
      std::fprintf(stderr, "catalog: %s\n", s.ToString().c_str());
      return 1;
    }
    const ReconcileReport recovery = (*manager)->last_recovery();
    std::printf("recovered catalog from %s\n",
                options->catalog_path.c_str());
    if (!recovery.clean() || recovery.posmaps_dropped > 0) {
      std::printf(
          "recovery: dropped %zu of %zu segment(s), %zu chunk(s) revert "
          "to raw, %zu posmap sidecar(s) dropped\n",
          recovery.segments_dropped, recovery.segments_checked,
          recovery.chunks_reverted, recovery.posmaps_dropped);
      for (const std::string& detail : recovery.details) {
        std::printf("recovery:   %s\n", detail.c_str());
      }
    }
  }
  if (options->scan_options.persist_positional_maps &&
      options->catalog_path.empty()) {
    std::fprintf(stderr,
                 "warning: --persist-posmap has no effect without --catalog "
                 "(the sidecar lives next to the catalog)\n");
  }

  if (!options->query_log_path.empty()) {
    auto log = obs::QueryLog::Open(options->query_log_path);
    if (!log.ok()) {
      std::fprintf(stderr, "query log: %s\n",
                   log.status().ToString().c_str());
      return 1;
    }
    query_log = std::move(*log);
    options->scan_options.query_log = query_log.get();

    // The workload-intelligence loop: persisted history (next to the
    // catalog when there is one) + replay of any log events newer than its
    // high-water seq, reconciled against the recovered catalog, then kept
    // live by observing every append.
    history = std::make_shared<obs::WorkloadHistory>();
    history_path = (options->catalog_path.empty() ? options->query_log_path
                                                  : options->catalog_path) +
                   ".history";
    if (FileExists(history_path)) {
      Status s = history->LoadFromFile(history_path);
      if (!s.ok()) {
        std::fprintf(stderr, "history: %s (starting fresh)\n",
                     s.ToString().c_str());
      }
    }
    auto folded = history->ReplayLog(options->query_log_path);
    if (folded.ok() && *folded > 0) {
      std::printf("history: replayed %llu logged quer%s\n",
                  static_cast<unsigned long long>(*folded),
                  *folded == 1 ? "y" : "ies");
    }
    if (recovering) {
      const uint64_t dropped =
          ReconcileHistoryWithCatalog(*history, *(*manager)->catalog());
      if (dropped > 0) {
        std::printf("history: dropped %llu table(s) absent from the "
                    "catalog\n",
                    static_cast<unsigned long long>(dropped));
      }
    }
    auto observer = history;
    query_log->SetObserver([observer](const obs::QueryLogEvent& event) {
      observer->Observe(event);
    });
    if (options->advisor) {
      options->scan_options.advisor =
          std::make_shared<obs::LoadAdvisor>(history.get());
    }
  }

  for (const auto& table : options->tables) {
    auto format = SchemaForFormat(table.format);
    if (!format.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   format.status().ToString().c_str());
      return 1;
    }
    ScanRawOptions table_options = options->scan_options;
    table_options.raw_format = format->raw_format;
    Status s = (*manager)->catalog()->HasTable(table.name)
                   ? (*manager)->AttachOptions(table.name, table_options)
                   : (*manager)->RegisterRawFile(table.name, table.path,
                                                 format->schema,
                                                 table_options);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Live introspection plane: HTTP /metrics, /statusz, /healthz. Declared
  // after the manager so the server (which reads its telemetry and statusz)
  // stops before the manager is destroyed.
  std::unique_ptr<obs::StatsServer> stats_server;
  if (options->stats_port >= 0) {
    obs::StatsServerOptions server_options;
    server_options.port = options->stats_port;
    server_options.telemetry = (*manager)->telemetry();
    server_options.watchdog = (*manager)->watchdog();
    ScanRawManager* mgr = manager->get();
    server_options.statusz_section = [mgr] { return mgr->Statusz(); };
    server_options.build_info = "scanraw_cli";
    stats_server = std::make_unique<obs::StatsServer>(server_options);
    Status s = stats_server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "stats server: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("stats server listening on http://127.0.0.1:%d\n",
                stats_server->port());
    std::fflush(stdout);
  }
  std::unique_ptr<MetricsPrinter> metrics_printer;
  if (options->metrics_interval_ms > 0) {
    metrics_printer = std::make_unique<MetricsPrinter>(
        (*manager)->telemetry(), options->metrics_interval_ms);
  }

  auto execute = [&](const std::string& sql) -> bool {
    auto table = ParseSelectTable(sql);
    if (!table.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   table.status().ToString().c_str());
      return false;
    }
    auto meta = (*manager)->catalog()->GetTable(*table);
    if (!meta.ok()) {
      std::fprintf(stderr, "error: %s\n", meta.status().ToString().c_str());
      return false;
    }
    auto parsed = ParseSelect(sql, meta->schema);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return false;
    }
    RealClock clock;
    const int64_t t0 = clock.NowNanos();
    obs::ExplainReport report;
    auto result = (*manager)->Query(parsed->table, parsed->spec,
                                    options->explain ? &report : nullptr);
    const double seconds =
        static_cast<double>(clock.NowNanos() - t0) * 1e-9;
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return false;
    }
    PrintResult(*result, seconds, parsed->has_avg);
    if (options->explain) {
      const std::string dump =
          options->explain_json ? report.ToJson() : report.ToText();
      std::printf("%s\n", dump.c_str());
    }
    auto after = (*manager)->catalog()->GetTable(parsed->table);
    if (after.ok()) {
      std::printf("-- %.0f%% of %s loaded into the database\n\n",
                  100 * after->LoadedFraction(), parsed->table.c_str());
    }
    return true;
  };

  int failures = 0;
  if (!options->statements.empty()) {
    for (const auto& sql : options->statements) {
      std::printf("> %s\n", sql.c_str());
      if (!execute(sql)) ++failures;
    }
  } else {
    std::string line;
    std::printf("scanraw> ");
    std::fflush(stdout);
    while (std::getline(std::cin, line)) {
      if (!line.empty() && line != "quit" && line != "exit") {
        if (!execute(line)) ++failures;
      } else if (line == "quit" || line == "exit") {
        break;
      }
      std::printf("scanraw> ");
      std::fflush(stdout);
    }
  }

  if (!options->catalog_path.empty()) {
    Status s = (*manager)->SaveCatalog(options->catalog_path);
    if (!s.ok()) {
      std::fprintf(stderr, "catalog save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("catalog saved to %s\n", options->catalog_path.c_str());
  }

  if (query_log != nullptr) {
    std::printf("query log: %llu event(s) appended to %s"
                " (%llu append failure(s), %llu rotation(s))\n",
                static_cast<unsigned long long>(query_log->events_appended()),
                options->query_log_path.c_str(),
                static_cast<unsigned long long>(query_log->append_failures()),
                static_cast<unsigned long long>(query_log->rotations()));
    Status s = query_log->Close();
    if (!s.ok()) {
      std::fprintf(stderr, "query log close: %s\n", s.ToString().c_str());
    }
    s = history->SaveToFile(history_path);
    if (!s.ok()) {
      std::fprintf(stderr, "history save: %s\n", s.ToString().c_str());
    } else {
      std::printf("history saved to %s\n", history_path.c_str());
    }
  }

  obs::Telemetry* telemetry = (*manager)->telemetry();
  if (options->metrics) {
    const std::string dump = options->metrics_json ? telemetry->ToJson()
                                                   : telemetry->ToText();
    std::printf("%s\n", dump.c_str());
    if (fault_injection.has_value()) {
      const FaultCounters& fc = fault_injection->injector()->counters();
      std::printf(
          "fault-injection: read_errors=%llu short_reads=%llu "
          "read_retries=%llu append_errors=%llu torn_appends=%llu "
          "sync_errors=%llu\n",
          static_cast<unsigned long long>(fc.read_errors.load()),
          static_cast<unsigned long long>(fc.short_reads.load()),
          static_cast<unsigned long long>(fc.read_retries.load()),
          static_cast<unsigned long long>(fc.append_errors.load()),
          static_cast<unsigned long long>(fc.torn_appends.load()),
          static_cast<unsigned long long>(fc.sync_errors.load()));
    }
  }
  if (!options->trace_path.empty()) {
    const std::string json = telemetry->tracer().ToChromeTraceJson();
    std::FILE* f = std::fopen(options->trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "trace: cannot open %s\n",
                   options->trace_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                options->trace_path.c_str(),
                static_cast<unsigned long long>(telemetry->tracer().recorded()),
                static_cast<unsigned long long>(telemetry->tracer().dropped()));
  }
  if (options->flight_dump) {
    if (options->flight_dump_path.empty()) {
      obs::FlightRecorder::Global()->DumpTo(2);
    } else if (obs::FlightRecorder::Global()->DumpToFile(
                   options->flight_dump_path.c_str())) {
      std::printf("flight recorder dumped to %s\n",
                  options->flight_dump_path.c_str());
    } else {
      std::fprintf(stderr, "flight dump: cannot open %s\n",
                   options->flight_dump_path.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) { return scanraw::Run(argc, argv); }
