#!/usr/bin/env python3
"""scanraw-lint: project-specific static checks for the SCANRAW tree.

Rules
-----
raw-mutex        std::mutex / std::condition_variable / std::lock_guard /
                 std::unique_lock / std::scoped_lock / std::shared_mutex are
                 banned in src/ outside common/thread_annotations.h. Use the
                 annotated Mutex / MutexLock / CondVar wrappers so Clang's
                 thread-safety analysis sees every lock.
unchecked-value  `.value()` on a Result/optional without a preceding `ok()`
                 (or has_value()) check in the same function scope. Prefer
                 SCANRAW_ASSIGN_OR_RETURN or an explicit ok() branch.
sleep-in-src     std::this_thread::sleep_for / sleep_until in src/ non-test
                 code. Time-based waits belong on a CondVar::WaitFor so
                 shutdown can interrupt them and TSan can see the ordering.
include-guard    Headers must carry the canonical SCANRAW_<PATH>_H_ include
                 guard (#ifndef/#define pair plus a commented #endif);
                 #pragma once is banned for consistency.
byte-loop        Per-byte `for` scans that compare an indexed byte against a
                 character literal are banned in src/format/ and
                 src/scanraw/ non-test code — the conversion hot path. Use
                 the bulk scanners in common/byte_scan.h (FindByte / FindN /
                 FindAll), which dispatch to SIMD, instead of advancing one
                 byte per iteration.
state-file-write WriteStringToFile in src/ non-test code (outside its
                 definition in io/file.cc). A crash mid-write leaves a torn
                 or empty file; state that must survive restart goes through
                 AtomicWriteFile (temp + fsync + rename).
flight-record-path
                 Mutex acquisition, IO calls, or heap allocation inside the
                 flight recorder's record-path functions (Record* and
                 FlightRecord, in files named *flight_recorder*). The record
                 path must be callable from any pipeline thread and from the
                 crash path: relaxed atomic stores only — no locks, no
                 open/write/fprintf, no new/malloc.
stderr-write     Direct stderr writes (fprintf(stderr, ...), fputs(...,
                 stderr), std::cerr, perror) in src/ non-test code outside
                 obs/log.cc. Diagnostics go through the leveled LOG_* macros
                 in obs/log.h so a resident server gets one rate-limited,
                 machine-parseable stream; obs/log.cc is the logger's
                 terminal sink and the only sanctioned writer.
mutex-rank       Every Mutex member declaration in src/ must name a
                 LockRank (`Mutex mu_{LockRank::kX, "Class.mu"};`) so the
                 lock participates in the whole-program acquisition order
                 checked by tools/lock_graph.py and the runtime sentinel
                 (see DESIGN.md "Lock hierarchy").
condvar-wait-loop
                 CondVar Wait/WaitFor calls must sit inside a predicate
                 loop (`while`/`for`/`do`, not a bare `if`): condition
                 variables wake spuriously, and an `if` turns a spurious
                 wakeup into a missed-predicate bug that only TSan-sized
                 schedules expose.

Suppressions: append `// scanraw-lint: allow(<rule>)` to the offending line
or place it on the line directly above.

Usage: scanraw_lint.py [path...]     (default: src/, relative to repo root)
Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

import os
import re
import sys

# Overridable so the unit tests can lint fixture trees laid out in a
# temporary directory as if they were the repo.
REPO_ROOT = os.environ.get(
    "SCANRAW_LINT_ROOT",
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# The annotated wrapper header is the one place raw primitives may live —
# plus the lock-discipline sentinel beneath it, whose registry cannot use
# scanraw::Mutex without recursing into its own hooks.
RAW_MUTEX_EXEMPT = ("common/thread_annotations.h", "common/lock_debug.cc")

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"(_any)?|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
SLEEP_RE = re.compile(r"std::this_thread::sleep_(for|until)\b")
# Dot access only: Results/optionals are held by value in this tree, while
# `->value()` is the Counter/Gauge accessor (a plain uint64, not a Result).
VALUE_CALL_RE = re.compile(r"[\w\)\]>]\s*\.\s*value\s*\(\s*\)")
OK_CHECK_RE = re.compile(r"\b(ok|has_value|IsOk)\s*\(")
ALLOW_RE = re.compile(r"//\s*scanraw-lint:\s*allow\(([\w-]+)\)")
# A function-definition-ish line: `... ) {` at low indent, not a control-flow
# statement. Used to bound the backwards scan for the unchecked-value rule.
FUNC_START_RE = re.compile(r"^[\w\}].*\)\s*(const\s*)?(noexcept\s*)?\{?\s*$")
CONTROL_KEYWORD_RE = re.compile(r"^\s*(if|for|while|switch|catch|else)\b")

MAX_SCOPE_LOOKBACK = 50  # lines; fallback when no function start is found

# state-file-write: the io/ implementation is where the primitive lives (and
# AtomicWriteFile itself is built on top of the writable-file layer there).
STATE_WRITE_EXEMPT = ("io/file.cc", "io/file.h")
STATE_WRITE_RE = re.compile(r"\bWriteStringToFile\s*\(")

# flight-record-path: files and function names forming the record path.
FLIGHT_FILE_MARKER = "flight_recorder"
# A definition-looking line whose function name is Record* or FlightRecord
# (optionally class-qualified). Declarations (ending in `;` before any `{`)
# are skipped by the body scan.
FLIGHT_FUNC_RE = re.compile(
    r"^[\w][\w:\s<>*&]*\b(?:\w+::)?(Record\w*|FlightRecord)\s*\(")
FLIGHT_FORBIDDEN = (
    ("mutex acquisition",
     re.compile(r"\bMutexLock\b|\bCondVar\b|\.\s*[Ll]ock\s*\(")),
    ("IO call",
     re.compile(r"\b(fopen|fclose|fwrite|fread|fprintf|fputs|fflush|fsync|"
                r"fdatasync|open|write|read|pread|pwrite)\s*\(")),
    ("heap allocation",
     re.compile(r"\bnew\b|\b(malloc|calloc|realloc)\s*\(")),
)

# stderr-write: the logger's terminal sink is the one sanctioned writer.
STDERR_EXEMPT = ("obs/log.cc",)
STDERR_WRITE_RE = re.compile(
    r"\bfprintf\s*\(\s*stderr\b|\bfputs\s*\([^)]*,\s*stderr\s*\)|"
    r"\bfputc\s*\([^)]*,\s*stderr\s*\)|\bstd::cerr\b|\bperror\s*\(")

# mutex-rank: a Mutex member declaration; `MutexLock`, `Mutex*` and
# `Mutex&` deliberately do not match. The wrapper header itself is exempt
# (it defines the type and documents the unranked constructor).
MUTEX_RANK_EXEMPT = ("common/thread_annotations.h",)
MUTEX_MEMBER_DECL_RE = re.compile(r"\b(?:mutable\s+)?Mutex\s+\w+\s*[;{]")

# condvar-wait-loop: a CondVar wait call; `WaitForWrites()` and other
# longer names do not match (the `(` must directly follow Wait/WaitFor).
WAIT_CALL_RE = re.compile(r"\b\w+\s*(?:\.|->)\s*Wait(?:For)?\s*\(")
LOOP_KEYWORD_RE = re.compile(r"\b(while|for|do)\b")

# byte-loop: hot-path directories where per-byte scan loops are banned.
BYTE_LOOP_DIRS = ("src/format/", "src/scanraw/")
# A `for` header that advances one element at a time.
FOR_INCREMENT_RE = re.compile(r"\bfor\s*\([^)]*\+\+")
# An indexed byte compared against a character literal, e.g.
# `data[i] == '\n'` or `buf[pos] != ','`.
CHAR_COMPARE_RE = re.compile(r"\w+\s*\[[^\]]*\]\s*[!=]=\s*'(\\.|[^'\\])'")
BYTE_LOOP_WINDOW = 3  # lines after the for-header to look for the compare


def is_suppressed(lines, idx, rule):
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def strip_comments(line):
    """Removes // comments and collapses string literals so lint patterns
    never match inside either. Block comments are rare in this tree and
    handled line-locally."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line.split("//")[0]


def check_raw_mutex(rel, lines, findings):
    if any(rel.endswith(e) for e in RAW_MUTEX_EXEMPT):
        return
    for i, line in enumerate(lines):
        code = strip_comments(line)
        m = RAW_MUTEX_RE.search(code)
        if m and not is_suppressed(lines, i, "raw-mutex"):
            findings.append((rel, i + 1, "raw-mutex",
                             f"use the annotated wrapper from "
                             f"common/thread_annotations.h instead of "
                             f"std::{m.group(1)}"))


def check_sleep(rel, lines, findings):
    for i, line in enumerate(lines):
        if SLEEP_RE.search(strip_comments(line)) and \
                not is_suppressed(lines, i, "sleep-in-src"):
            findings.append((rel, i + 1, "sleep-in-src",
                             "use CondVar::WaitFor instead of "
                             "std::this_thread::sleep_for"))


def scope_start(lines, idx):
    """Best-effort index of the enclosing function body start: walk upwards
    past balanced braces until a definition-looking line at brace depth
    <= 0, bounded by MAX_SCOPE_LOOKBACK."""
    depth = 0
    lo = max(0, idx - MAX_SCOPE_LOOKBACK)
    for j in range(idx - 1, lo - 1, -1):
        code = strip_comments(lines[j])
        depth += code.count("}") - code.count("{")
        if depth < 0 and FUNC_START_RE.match(code) and \
                not CONTROL_KEYWORD_RE.match(code):
            return j
    return lo


def check_unchecked_value(rel, lines, findings):
    for i, line in enumerate(lines):
        code = strip_comments(line)
        if not VALUE_CALL_RE.search(code):
            continue
        if OK_CHECK_RE.search(code):
            continue  # checked on the same line (e.g. `r.ok() ? r.value()...`)
        if is_suppressed(lines, i, "unchecked-value"):
            continue
        start = scope_start(lines, i)
        checked = any(OK_CHECK_RE.search(strip_comments(lines[j]))
                      for j in range(start, i))
        if not checked:
            findings.append((rel, i + 1, "unchecked-value",
                             ".value() without a preceding ok() check in "
                             "the same scope"))


def check_include_guard(rel, lines, findings):
    for i, line in enumerate(lines):
        if re.match(r"\s*#\s*pragma\s+once\b", line) and \
                not is_suppressed(lines, i, "include-guard"):
            findings.append((rel, i + 1, "include-guard",
                             "#pragma once is banned; use a "
                             "SCANRAW_<PATH>_H_ ifndef guard"))
            return
    ifndef = None
    ifndef_line = 0
    for i, line in enumerate(lines):
        m = re.match(r"\s*#\s*ifndef\s+(\w+)", line)
        if m:
            ifndef, ifndef_line = m.group(1), i
            break
        if re.match(r"\s*#\s*(if|include|define)\b", line):
            break  # preprocessor activity before any guard
    if ifndef is None:
        if not is_suppressed(lines, 0, "include-guard"):
            findings.append((rel, 1, "include-guard",
                             "header has no include guard"))
        return
    if is_suppressed(lines, ifndef_line, "include-guard"):
        return
    # The #define must immediately follow the #ifndef with the same token.
    if ifndef_line + 1 >= len(lines) or not re.match(
            rf"\s*#\s*define\s+{re.escape(ifndef)}\s*$",
            lines[ifndef_line + 1]):
        findings.append((rel, ifndef_line + 2, "include-guard",
                         f"#define {ifndef} must directly follow the "
                         f"#ifndef"))
        return
    # Canonical token for headers under a src/ root.
    parts = rel.replace(os.sep, "/").split("/")
    if "src" in parts:
        sub = "/".join(parts[parts.index("src") + 1:])
        expected = "SCANRAW_" + re.sub(r"[^A-Za-z0-9]", "_", sub).upper() + "_"
        if ifndef != expected:
            findings.append((rel, ifndef_line + 1, "include-guard",
                             f"guard is {ifndef}, expected {expected}"))
            return
    # Closing #endif should name the guard in a trailing comment.
    for line in reversed(lines):
        stripped = line.strip()
        if not stripped:
            continue
        if not re.match(rf"#\s*endif\s*//\s*{re.escape(ifndef)}\b", stripped):
            findings.append((rel, len(lines), "include-guard",
                             f"closing #endif must carry a "
                             f"`// {ifndef}` comment"))
        return


def check_state_file_write(rel, lines, findings):
    if any(rel.replace(os.sep, "/").endswith(e) for e in STATE_WRITE_EXEMPT):
        return
    for i, line in enumerate(lines):
        if STATE_WRITE_RE.search(strip_comments(line)) and \
                not is_suppressed(lines, i, "state-file-write"):
            findings.append((rel, i + 1, "state-file-write",
                             "WriteStringToFile is not crash-safe; use "
                             "AtomicWriteFile for state files"))


def check_stderr_write(rel, lines, findings):
    if any(rel.replace(os.sep, "/").endswith(e) for e in STDERR_EXEMPT):
        return
    for i, line in enumerate(lines):
        if STDERR_WRITE_RE.search(strip_comments(line)) and \
                not is_suppressed(lines, i, "stderr-write"):
            findings.append((rel, i + 1, "stderr-write",
                             "direct stderr write in src/; use the LOG_* "
                             "macros from obs/log.h (obs/log.cc is the only "
                             "sanctioned writer)"))


def check_byte_loop(rel, lines, findings):
    norm = rel.replace(os.sep, "/")
    if not any(norm.startswith(d) or f"/{d}" in norm for d in BYTE_LOOP_DIRS):
        return
    for i, line in enumerate(lines):
        code = strip_comments(line)
        if not FOR_INCREMENT_RE.search(code):
            continue
        hi = min(len(lines), i + BYTE_LOOP_WINDOW + 1)
        hit = next((j for j in range(i, hi)
                    if CHAR_COMPARE_RE.search(strip_comments(lines[j]))),
                   None)
        if hit is None:
            continue
        if is_suppressed(lines, i, "byte-loop") or \
                is_suppressed(lines, hit, "byte-loop"):
            continue
        findings.append((rel, i + 1, "byte-loop",
                         "per-byte scan loop in the conversion hot path; "
                         "use FindByte/FindN/FindAll from "
                         "common/byte_scan.h"))


def check_flight_record_path(rel, lines, findings):
    if FLIGHT_FILE_MARKER not in os.path.basename(rel):
        return
    i, n = 0, len(lines)
    while i < n:
        if not FLIGHT_FUNC_RE.match(strip_comments(lines[i])):
            i += 1
            continue
        # Find the body's opening brace; a `;` first means a declaration.
        j, opened = i, False
        while j < n:
            code = strip_comments(lines[j])
            brace, semi = code.find("{"), code.find(";")
            if brace != -1 and (semi == -1 or brace < semi):
                opened = True
                break
            if semi != -1:
                break
            j += 1
        if not opened:
            i = j + 1
            continue
        # Scan the body, tracking brace depth until it closes.
        depth, k = 0, j
        while k < n:
            code = strip_comments(lines[k])
            depth += code.count("{") - code.count("}")
            for what, pat in FLIGHT_FORBIDDEN:
                if pat.search(code) and \
                        not is_suppressed(lines, k, "flight-record-path"):
                    findings.append((rel, k + 1, "flight-record-path",
                                     f"{what} in a flight-recorder record "
                                     f"path; Record* must stay lock-free, "
                                     f"IO-free, and allocation-free"))
            if depth <= 0:
                break
            k += 1
        i = k + 1


def check_mutex_rank(rel, lines, findings):
    if any(rel.replace(os.sep, "/").endswith(e) for e in MUTEX_RANK_EXEMPT):
        return
    for i, line in enumerate(lines):
        code = strip_comments(line)
        m = MUTEX_MEMBER_DECL_RE.search(code)
        if not m:
            continue
        # Tolerate the rank on a continuation line of a `{`-initializer.
        probe = code
        if m.group(0).endswith("{") and i + 1 < len(lines):
            probe += strip_comments(lines[i + 1])
        if "LockRank::" in probe:
            continue
        if is_suppressed(lines, i, "mutex-rank"):
            continue
        findings.append((rel, i + 1, "mutex-rank",
                         "Mutex member must declare a LockRank "
                         "(`Mutex mu_{LockRank::kX, \"Class.mu\"};`); see "
                         "DESIGN.md \"Lock hierarchy\""))


def check_condvar_wait_loop(rel, lines, findings):
    for i, line in enumerate(lines):
        code = strip_comments(line)
        if not WAIT_CALL_RE.search(code):
            continue
        if LOOP_KEYWORD_RE.search(code):
            continue  # same-line `while (!ready) cv.Wait(lock);`
        if is_suppressed(lines, i, "condvar-wait-loop"):
            continue
        # Walk outwards: the wait passes if ANY enclosing block within the
        # function is a loop (the predicate re-check may sit one level out,
        # e.g. `for (;;) { { lock; if (!stop_) cv.WaitFor(...); } ... }`).
        wrapped = False
        depth = 0
        min_depth = 0
        lo = max(0, i - MAX_SCOPE_LOOKBACK)
        for j in range(i - 1, lo - 1, -1):
            cj = strip_comments(lines[j])
            depth += cj.count("}") - cj.count("{")
            if depth >= min_depth:
                continue
            min_depth = depth
            if LOOP_KEYWORD_RE.search(cj):
                wrapped = True
                break
            # A bare `{` opener: the loop header may sit on the line above.
            if cj.strip() == "{" and j > 0 and \
                    LOOP_KEYWORD_RE.search(strip_comments(lines[j - 1])):
                wrapped = True
                break
            if FUNC_START_RE.match(cj) and not CONTROL_KEYWORD_RE.match(cj):
                break  # reached the function definition: no loop found
        if not wrapped:
            findings.append((rel, i + 1, "condvar-wait-loop",
                             "CondVar wait not wrapped in a predicate loop; "
                             "use `while (!cond) cv.Wait(lock);` (condition "
                             "variables wake spuriously)"))


def is_test_file(rel):
    base = os.path.basename(rel)
    return ("test" in base) or ("/tests/" in rel.replace(os.sep, "/"))


def lint_file(path, findings):
    rel = os.path.relpath(path, REPO_ROOT)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"scanraw-lint: cannot read {rel}: {e}", file=sys.stderr)
        sys.exit(2)
    in_src = rel.replace(os.sep, "/").startswith("src/")
    if in_src and not is_test_file(rel):
        check_raw_mutex(rel, lines, findings)
        check_sleep(rel, lines, findings)
        check_stderr_write(rel, lines, findings)
        check_byte_loop(rel, lines, findings)
        check_state_file_write(rel, lines, findings)
        check_flight_record_path(rel, lines, findings)
        check_mutex_rank(rel, lines, findings)
        check_condvar_wait_loop(rel, lines, findings)
    check_unchecked_value(rel, lines, findings)
    if rel.endswith(".h"):
        check_include_guard(rel, lines, findings)


def collect(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith((".h", ".cc")):
                        out.append(os.path.join(root, n))
        elif os.path.isfile(p):
            out.append(p)
        else:
            print(f"scanraw-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def main(argv):
    paths = argv[1:] or [os.path.join(REPO_ROOT, "src")]
    findings = []
    files = collect(paths)
    for f in files:
        lint_file(f, findings)
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"scanraw-lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
