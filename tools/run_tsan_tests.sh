#!/usr/bin/env bash
# Back-compat wrapper: runs the concurrency-sensitive test binaries under
# ThreadSanitizer. All logic lives in run_sanitizer_tests.sh, which also
# handles asan/ubsan, honors CTEST_PARALLEL_LEVEL, and fails fast when the
# configure step breaks.
#
#   tools/run_tsan_tests.sh [test_binary]...
set -euo pipefail
exec "$(dirname "$0")/run_sanitizer_tests.sh" tsan "$@"
