#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-sensitive test
# binaries (pipeline, scanraw core, telemetry/obs) under TSan. Any data race
# aborts the run with a non-zero exit.
#
#   tools/run_tsan_tests.sh [test_binary]...
#
# The TSan tree lives in build-tsan/ so it never pollutes the regular build.
set -euo pipefail

cd "$(dirname "$0")/.."

TESTS=("$@")
if [ "${#TESTS[@]}" -eq 0 ]; then
  TESTS=(pipeline_test scanraw_test scanraw_features_test scanraw_stress_test
         obs_test explain_test telemetry_test chunk_cache_test)
fi

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target "${TESTS[@]}"

# halt_on_error: fail fast on the first race instead of drowning in reports.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

for t in "${TESTS[@]}"; do
  echo "== TSan: ${t}"
  "build-tsan/tests/${t}"
done
echo "TSan run clean."
