#!/usr/bin/env bash
# Builds one sanitizer preset and runs tests under it.
#
#   tools/run_sanitizer_tests.sh <asan|ubsan|tsan> [test_binary]...
#
# With no test binaries the full ctest suite runs (asan/ubsan) or the
# concurrency-sensitive subset (tsan — the full suite is slow under TSan and
# the single-threaded tests cannot race). Each sanitizer has its own build
# tree (build-<san>/) so trees never contaminate each other.
#
# Honors CTEST_PARALLEL_LEVEL for the test-run fan-out (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <asan|ubsan|tsan> [test_binary]..." >&2
  exit 2
fi

SAN="$1"
shift
case "${SAN}" in
  asan|ubsan|tsan) ;;
  *)
    echo "error: unknown sanitizer '${SAN}' (want asan, ubsan, or tsan)" >&2
    exit 2
    ;;
esac

TESTS=("$@")
PARALLEL="${CTEST_PARALLEL_LEVEL:-$(nproc)}"

# Fail fast and loud when configure itself breaks — a silent fall-through
# here used to surface as a confusing "missing binary" error much later.
if ! cmake --preset "${SAN}"; then
  echo "error: cmake configure failed for preset '${SAN}'" >&2
  exit 1
fi

# Fail-fast runtime options: abort on the first report instead of drowning
# in follow-on noise.
export ASAN_OPTIONS="abort_on_error=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1 ${UBSAN_OPTIONS:-}"
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

if [ "${#TESTS[@]}" -eq 0 ] && [ "${SAN}" = "tsan" ]; then
  TESTS=(pipeline_test scanraw_test scanraw_features_test scanraw_stress_test
         obs_test explain_test telemetry_test chunk_cache_test
         positional_map_cache_test
         query_log_test flight_recorder_test workload_test
         timeseries_test log_test watchdog_test stats_server_test
         lock_discipline_test parallel_chunker_test hotpath_equivalence_test)
fi

if [ "${#TESTS[@]}" -eq 0 ]; then
  cmake --build --preset "${SAN}" -j "$(nproc)"
  ctest --preset "${SAN}" -j "${PARALLEL}"
else
  cmake --build --preset "${SAN}" -j "$(nproc)" --target "${TESTS[@]}"
  for t in "${TESTS[@]}"; do
    echo "== ${SAN}: ${t}"
    "build-${SAN}/tests/${t}"
  done
fi
echo "${SAN} run clean."
