// bench_compare — the perf-regression gate over BENCH_<name>.json
// artifacts written by the figure/table benches.
//
//   bench_compare BASELINE.json CANDIDATE.json [--threshold=PCT]
//
// Diffs every numeric cell of the candidate against the baseline (rows
// matched by first-column key, columns by header). Bench cells are times
// and costs, so larger is worse: a cell regresses when the candidate
// exceeds the baseline by more than PCT percent (default 5). Prints the
// aligned diff, worst regressions first, and exits nonzero iff at least
// one cell regressed — CI runs this against the checked-in golden
// artifacts in bench/golden/.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/file.h"
#include "obs/bench_compare.h"

namespace scanraw {
namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json CANDIDATE.json "
               "[--threshold=PCT]\n"
               "exits 1 when a numeric cell of CANDIDATE exceeds BASELINE "
               "by more than PCT%% (default 5)\n");
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  double threshold_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold_pct = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || threshold_pct < 0) {
        std::fprintf(stderr, "bad --threshold value: %s\n", arg.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (candidate_path.empty()) {
    Usage();
    return 2;
  }

  auto load = [](const std::string& path) -> Result<obs::BenchTable> {
    auto contents = ReadFileToString(path);
    if (!contents.ok()) return contents.status();
    return obs::ParseBenchJson(*contents);
  };
  auto baseline = load(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = load(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "%s: %s\n", candidate_path.c_str(),
                 candidate.status().ToString().c_str());
    return 2;
  }
  if (baseline->name != candidate->name) {
    std::fprintf(stderr, "warning: comparing different benches: %s vs %s\n",
                 baseline->name.c_str(), candidate->name.c_str());
  }

  const obs::BenchComparison comparison =
      obs::CompareBenchTables(*baseline, *candidate, threshold_pct);
  std::printf("bench %s: baseline=%s candidate=%s threshold=%.1f%%\n",
              candidate->name.c_str(), baseline_path.c_str(),
              candidate_path.c_str(), threshold_pct);
  std::printf("%s", comparison.ToText().c_str());
  if (comparison.has_regression()) {
    std::printf("RESULT: REGRESSED\n");
    return 1;
  }
  std::printf("RESULT: OK\n");
  return 0;
}

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) { return scanraw::Run(argc, argv); }
