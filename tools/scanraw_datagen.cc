// scanraw_datagen — generate the synthetic datasets used throughout the
// repo: the CSV micro-benchmark suite, its JSON-lines twin, and SAM/BAM-like
// genomics files.
//
//   scanraw_datagen csv   --out /tmp/d.csv   --rows 100000 --cols 16
//   scanraw_datagen jsonl --out /tmp/d.jsonl --rows 100000 --cols 16
//   scanraw_datagen sam   --out /tmp/d.sam   --reads 200000
//   scanraw_datagen bam   --out /tmp/d.bam   --reads 200000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/csv_generator.h"
#include "datagen/jsonl_generator.h"
#include "format/parser.h"
#include "genomics/bam_like.h"
#include "genomics/sam.h"

namespace scanraw {
namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: scanraw_datagen csv|jsonl --out PATH --rows N "
               "--cols K [--seed S]\n"
               "       scanraw_datagen sam|bam   --out PATH --reads N "
               "[--seed S] [--pattern P]\n");
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string kind = argv[1];
  std::string out;
  uint64_t rows = 0, cols = 0, reads = 0, seed = 1;
  std::string pattern = "ACGTACGTAC";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", arg.c_str());
      return 2;
    }
    const std::string value = argv[++i];
    auto parse_count = [&](uint64_t* dst) {
      auto v = ParseUint32(value);
      if (v.ok()) *dst = *v;
      return v.ok();
    };
    bool ok = true;
    if (arg == "--out") {
      out = value;
    } else if (arg == "--rows") {
      ok = parse_count(&rows);
    } else if (arg == "--cols") {
      ok = parse_count(&cols);
    } else if (arg == "--reads") {
      ok = parse_count(&reads);
    } else if (arg == "--seed") {
      ok = parse_count(&seed);
    } else if (arg == "--pattern") {
      pattern = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s: %s\n", arg.c_str(),
                   value.c_str());
      return 2;
    }
  }
  if (out.empty()) {
    Usage();
    return 2;
  }

  if (kind == "csv" || kind == "jsonl") {
    if (rows == 0 || cols == 0) {
      std::fprintf(stderr, "%s requires --rows and --cols\n", kind.c_str());
      return 2;
    }
    CsvSpec spec;
    spec.num_rows = rows;
    spec.num_columns = cols;
    spec.seed = seed;
    auto info = kind == "csv" ? GenerateCsvFile(out, spec)
                              : GenerateJsonlFile(out, spec);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %llu rows x %zu cols, %.1f MB, total sum %llu\n",
                out.c_str(),
                static_cast<unsigned long long>(info->num_rows),
                info->num_columns, info->file_bytes / 1048576.0,
                static_cast<unsigned long long>(info->total_sum));
    return 0;
  }
  if (kind == "sam" || kind == "bam") {
    if (reads == 0) {
      std::fprintf(stderr, "%s requires --reads\n", kind.c_str());
      return 2;
    }
    SamGenSpec spec;
    spec.num_reads = reads;
    spec.seed = seed;
    spec.pattern = pattern;
    if (kind == "sam") {
      auto info = GenerateSamFile(out, spec);
      if (!info.ok()) {
        std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
        return 1;
      }
      std::printf("%s: %llu reads, %.1f MB, %llu match \"%s\"\n", out.c_str(),
                  static_cast<unsigned long long>(info->num_reads),
                  info->file_bytes / 1048576.0,
                  static_cast<unsigned long long>(info->matching_reads),
                  spec.pattern.c_str());
    } else {
      auto info = GenerateBamFile(out, spec);
      if (!info.ok()) {
        std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
        return 1;
      }
      std::printf("%s: %llu reads, %.1f MB binary\n", out.c_str(),
                  static_cast<unsigned long long>(info->num_reads),
                  info->file_bytes / 1048576.0);
    }
    return 0;
  }
  Usage();
  return 2;
}

}  // namespace
}  // namespace scanraw

int main(int argc, char** argv) { return scanraw::Run(argc, argv); }
